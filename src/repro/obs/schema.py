"""The JSONL trace-event schema, enforced without a schema library.

Every line a :class:`~repro.obs.trace.Tracer` emits must satisfy this
module's :func:`validate_event`; the tests validate generated traces and
the CI ``observability`` job validates real serve runs.  The schema is
deliberately *closed* -- unknown keys are rejected -- so a producer that
drifts fails loudly instead of shipping fields no consumer reads.

Event shapes (``attrs`` optional everywhere)::

    {"kind": "span",     "name": N, "ts": T, "dur": D, "attrs": {...}}
    {"kind": "event",    "name": N, "ts": T,           "attrs": {...}}
    {"kind": "snapshot", "name": N, "ts": T, "metrics": {...}}

with ``N`` a dotted lowercase identifier (the span taxonomy of
``docs/ARCHITECTURE.md``), ``T``/``D`` non-negative finite numbers, attrs
a flat mapping of string keys to JSON scalars, and ``metrics`` shaped like
a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

__all__ = ["TraceSchemaError", "validate_event", "validate_trace_path"]

_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")

_REQUIRED = {
    "span": frozenset({"kind", "name", "ts", "dur"}),
    "event": frozenset({"kind", "name", "ts"}),
    "snapshot": frozenset({"kind", "name", "ts", "metrics"}),
}
_OPTIONAL = {
    "span": frozenset({"attrs"}),
    "event": frozenset({"attrs"}),
    "snapshot": frozenset(),
}
_SNAPSHOT_SECTIONS = ("counters", "gauges", "histograms")


class TraceSchemaError(ValueError):
    """A trace line violates the event schema."""


def _require_number(value, field: str, context: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TraceSchemaError(f"{context}: {field} must be a number, got {value!r}")
    if not math.isfinite(value) or value < 0:
        raise TraceSchemaError(
            f"{context}: {field} must be finite and non-negative, got {value!r}"
        )


def _validate_attrs(attrs, context: str) -> None:
    if not isinstance(attrs, dict):
        raise TraceSchemaError(f"{context}: attrs must be an object, got {attrs!r}")
    for key, value in attrs.items():
        if not isinstance(key, str):
            raise TraceSchemaError(f"{context}: attr keys must be strings, got {key!r}")
        if value is not None and not isinstance(value, (bool, int, float, str)):
            raise TraceSchemaError(
                f"{context}: attr {key!r} must be a JSON scalar, got {value!r}"
            )


def _validate_metrics(metrics, context: str) -> None:
    if not isinstance(metrics, dict):
        raise TraceSchemaError(f"{context}: metrics must be an object")
    unknown = set(metrics) - set(_SNAPSHOT_SECTIONS)
    if unknown:
        raise TraceSchemaError(f"{context}: unknown metrics sections {sorted(unknown)}")
    for section in _SNAPSHOT_SECTIONS:
        block = metrics.get(section, {})
        if not isinstance(block, dict):
            raise TraceSchemaError(f"{context}: metrics.{section} must be an object")
        for name, value in block.items():
            if not isinstance(name, str) or not _NAME.match(name):
                raise TraceSchemaError(
                    f"{context}: bad metric name {name!r} in {section}"
                )
            if section == "histograms":
                if not isinstance(value, dict) or not (
                    {"bounds", "counts", "count", "sum"} <= set(value)
                ):
                    raise TraceSchemaError(
                        f"{context}: histogram {name!r} missing bounds/counts/count/sum"
                    )
                if len(value["counts"]) != len(value["bounds"]) + 1:
                    raise TraceSchemaError(
                        f"{context}: histogram {name!r} counts/bounds length mismatch"
                    )
            elif isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TraceSchemaError(
                    f"{context}: metric {name!r} must be numeric, got {value!r}"
                )


def validate_event(event, *, context: str = "trace event") -> str:
    """Validate one decoded trace event; returns its kind.

    Raises :class:`TraceSchemaError` naming the offending field, so a
    schema break in CI reads as a diagnosis rather than a diff.
    """
    if not isinstance(event, dict):
        raise TraceSchemaError(f"{context}: expected an object, got {event!r}")
    kind = event.get("kind")
    if kind not in _REQUIRED:
        raise TraceSchemaError(f"{context}: unknown kind {kind!r}")
    keys = set(event)
    missing = _REQUIRED[kind] - keys
    if missing:
        raise TraceSchemaError(f"{context}: {kind} missing keys {sorted(missing)}")
    unknown = keys - _REQUIRED[kind] - _OPTIONAL[kind]
    if unknown:
        raise TraceSchemaError(f"{context}: {kind} has unknown keys {sorted(unknown)}")
    name = event["name"]
    if not isinstance(name, str) or not _NAME.match(name):
        raise TraceSchemaError(
            f"{context}: name must be a dotted lowercase identifier, got {name!r}"
        )
    _require_number(event["ts"], "ts", context)
    if kind == "span":
        _require_number(event["dur"], "dur", context)
    if "attrs" in event:
        _validate_attrs(event["attrs"], context)
    if kind == "snapshot":
        _validate_metrics(event["metrics"], context)
    return kind


def validate_trace_path(path: str | Path) -> dict:
    """Validate every line of a JSONL trace file; returns counts by kind.

    Blank lines are rejected -- a truncated write must not pass as a
    clean file.  The error message carries the 1-based line number.
    """
    counts = {kind: 0 for kind in _REQUIRED}
    with Path(path).open() as handle:
        for line_number, line in enumerate(handle, start=1):
            context = f"{path}:{line_number}"
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceSchemaError(f"{context}: not valid JSON: {error}") from None
            counts[validate_event(event, context=context)] += 1
    return counts
