"""Span-based tracing: schema-validated JSONL events with an injected clock.

A :class:`Tracer` writes one JSON object per line to a sink, three kinds
(the schema in :mod:`repro.obs.schema` is the contract):

``span``
    A timed region: ``{"kind": "span", "name", "ts", "dur", "attrs"}``.
    Produced by the :meth:`Tracer.span` context manager; ``ts`` is the
    clock reading at entry, ``dur`` the elapsed clock at exit.  Attributes
    may be added inside the region (``span.attrs["cache"] = "hit"``) --
    they are serialised at exit.
``event``
    An instantaneous occurrence (a worker restart, a degradation):
    ``{"kind": "event", "name", "ts", "attrs"}``.
``snapshot``
    A metrics-registry snapshot embedded in the stream, written by
    :meth:`Tracer.snapshot` (the CLI emits one final snapshot before
    closing) so a trace file is self-contained: spans for the timeline,
    the snapshot for the aggregates.

The clock is injected (``clock=time.perf_counter`` by default): tests pass
a deterministic fake and the emitted bytes are stable forever, the same
discipline ``bench/report.py`` uses for its golden markdown.  Attribute
values are coerced to JSON scalars at write time (numpy ints arrive from
every call site), so an emitted line always validates.

The disabled path is :data:`NULL_TRACER`: ``enabled`` is ``False``, spans
are one shared no-op context manager and events return immediately --
cheap enough to call unconditionally on per-request paths that cost
microseconds, and free on paths that gate on ``tracer.enabled`` first.
"""

from __future__ import annotations

import json
import numbers
import time
from pathlib import Path

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer"]


def _scalar(value):
    """Coerce one attribute value to a JSON scalar (schema contract)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # numpy integers/floats register with the numeric ABCs, so this stays
    # numpy-free while keeping ints ints (7, not 7.0) in the emitted JSON.
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    return str(value)


class Span:
    """One timed region; a context manager that writes itself at exit."""

    __slots__ = ("_tracer", "name", "attrs", "_started")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._started = 0.0

    def __enter__(self) -> "Span":
        self._started = self._tracer._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        ended = self._tracer._clock()
        self._tracer._write(
            {
                "kind": "span",
                "name": self.name,
                "ts": self._started,
                "dur": max(ended - self._started, 0.0),
            },
            self.attrs,
        )


class Tracer:
    """JSONL trace writer over one sink with an injected clock.

    Parameters
    ----------
    sink:
        File-like object with ``write(str)``; the tracer writes one JSON
        line per event and never seeks.
    clock:
        Zero-argument callable returning monotonically non-decreasing
        floats; ``time.perf_counter`` in production, a deterministic
        counter in tests.
    path:
        Recorded origin of the sink when it is a file the tracer owns --
        the serving front end reads it to derive per-worker trace paths.
    """

    enabled = True

    def __init__(self, sink, *, clock=time.perf_counter, path: str | None = None):
        self._sink = sink
        self._clock = clock
        self.path = path
        self._owns_sink = False
        self.events_written = 0

    @classmethod
    def to_path(cls, path: str | Path, *, clock=time.perf_counter) -> "Tracer":
        """Tracer over a line-buffered file it owns (closed by :meth:`close`)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tracer = cls(open(path, "w", buffering=1), clock=clock, path=str(path))
        tracer._owns_sink = True
        return tracer

    # -- emission ----------------------------------------------------------
    def _write(self, payload: dict, attrs: dict | None) -> None:
        if attrs:
            payload["attrs"] = {
                key: _scalar(value) for key, value in sorted(attrs.items())
            }
        self._sink.write(json.dumps(payload, sort_keys=True) + "\n")
        self.events_written += 1

    def span(self, name: str, **attrs) -> Span:
        """Context manager timing a region; writes one ``span`` line at exit."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Write one instantaneous ``event`` line."""
        self._write({"kind": "event", "name": name, "ts": self._clock()}, attrs)

    def snapshot(self, name: str, metrics: dict) -> None:
        """Embed a metrics-registry snapshot in the stream."""
        self._write(
            {
                "kind": "snapshot",
                "name": name,
                "ts": self._clock(),
                "metrics": metrics,
            },
            None,
        )

    def close(self) -> None:
        """Flush, and close the sink if this tracer opened it."""
        flush = getattr(self._sink, "flush", None)
        if flush is not None:
            try:
                flush()
            except ValueError:  # pragma: no cover - sink already closed
                pass
        if self._owns_sink:
            self._sink.close()


class _NullSpan:
    """Shared no-op span: the whole disabled-tracing cost of a region."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    @property
    def attrs(self) -> dict:
        # A throwaway dict per access: attribute writes inside the region
        # vanish without accumulating on the shared instance.
        return {}


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a near-free no-op."""

    enabled = False
    path = None
    events_written = 0

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        return None

    def snapshot(self, name: str, metrics: dict) -> None:
        return None

    def close(self) -> None:
        return None


#: The process-wide disabled tracer (stateless, safe to share).
NULL_TRACER = NullTracer()
