"""Render a trace file or metrics snapshot as readable text.

``repro obs report TRACE`` summarises a JSONL trace: per-span-name
duration statistics (count, total, mean, exact p50/p99 over the recorded
durations -- a trace holds every span, so no bucket interpolation is
needed), the event tally, and the final embedded metrics snapshot if one
was written.  Rendering rides the same :func:`~repro.bench.reporting
.format_table` the benchmark harness uses, and is deterministic for a
given trace file (spans sorted by name, metrics pre-sorted by the
registry), so the golden test can pin exact bytes.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..bench.reporting import format_table
from .schema import validate_event

__all__ = ["render_metrics_snapshot", "render_trace_report", "summarize_trace"]


def _exact_quantile(sorted_values: list, q: float) -> float:
    """Exact quantile by linear interpolation over the sorted sample."""
    if not sorted_values:
        return 0.0
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


def summarize_trace(path: str | Path) -> dict:
    """Parse and validate a JSONL trace; return the aggregate summary.

    Returns ``{"spans": {name: {count, sum, mean, p50, p99}}, "events":
    {name: count}, "snapshot": <last embedded metrics dict or None>,
    "lines": n}``.  Every line is schema-validated on the way through,
    so a malformed trace fails here rather than rendering nonsense.
    """
    durations: dict[str, list] = {}
    events: dict[str, int] = {}
    snapshot = None
    lines = 0
    with Path(path).open() as handle:
        for line_number, line in enumerate(handle, start=1):
            record = json.loads(line)
            kind = validate_event(record, context=f"{path}:{line_number}")
            lines += 1
            if kind == "span":
                durations.setdefault(record["name"], []).append(record["dur"])
            elif kind == "event":
                events[record["name"]] = events.get(record["name"], 0) + 1
            else:
                snapshot = record["metrics"]
    spans = {}
    for name in sorted(durations):
        values = sorted(durations[name])
        total = sum(values)
        spans[name] = {
            "count": len(values),
            "sum": total,
            "mean": total / len(values),
            "p50": _exact_quantile(values, 0.50),
            "p99": _exact_quantile(values, 0.99),
        }
    return {
        "spans": spans,
        "events": dict(sorted(events.items())),
        "snapshot": snapshot,
        "lines": lines,
    }


def render_metrics_snapshot(snapshot: dict) -> str:
    """Render one registry snapshot (from ``!metrics`` or a trace) as text."""
    blocks = []
    counters = snapshot.get("counters", {})
    if counters:
        blocks.append(
            "counters\n"
            + format_table(["name", "value"], sorted(counters.items()))
        )
    gauges = snapshot.get("gauges", {})
    if gauges:
        blocks.append(
            "gauges\n" + format_table(["name", "value"], sorted(gauges.items()))
        )
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = [
            [
                name,
                summary["count"],
                summary["sum"],
                summary.get("mean", 0.0),
                summary.get("p50", 0.0),
                summary.get("p99", 0.0),
            ]
            for name, summary in sorted(histograms.items())
        ]
        blocks.append(
            "histograms\n"
            + format_table(["name", "count", "sum", "mean", "p50", "p99"], rows)
        )
    if not blocks:
        return "(no metrics recorded)"
    return "\n\n".join(blocks)


def render_trace_report(path: str | Path) -> str:
    """The ``repro obs report`` body for one trace file."""
    summary = summarize_trace(path)
    blocks = [f"trace {path}: {summary['lines']} events"]
    if summary["spans"]:
        rows = [
            [name, s["count"], s["sum"], s["mean"], s["p50"], s["p99"]]
            for name, s in summary["spans"].items()
        ]
        blocks.append(
            "spans\n"
            + format_table(
                ["span", "count", "sum_s", "mean_s", "p50_s", "p99_s"], rows
            )
        )
    if summary["events"]:
        blocks.append(
            "events\n"
            + format_table(["event", "count"], summary["events"].items())
        )
    if summary["snapshot"] is not None:
        blocks.append(render_metrics_snapshot(summary["snapshot"]))
    return "\n\n".join(blocks)
