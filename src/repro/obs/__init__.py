"""Cross-cutting observability: metrics registry + span tracing.

The repo's first layer that touches every subsystem.  Call sites use the
tiny runtime vocabulary (``obs.span``, ``obs.event``, ``obs.counter``,
gated by ``obs.on()`` on hot paths); everything else -- the registry and
histogram mechanics, the JSONL schema, reporting, and the bench-store
bridge -- lives in the submodules.

* :mod:`~repro.obs.metrics` -- counters, gauges, fixed-bucket histograms,
  mergeable snapshots (the worker→front-end ``!metrics`` contract).
* :mod:`~repro.obs.trace` -- span/event/snapshot JSONL tracer with an
  injected clock; :data:`NULL_TRACER` is the near-free disabled path.
* :mod:`~repro.obs.schema` -- the closed JSONL event schema and validator.
* :mod:`~repro.obs.runtime` -- the process-global state and lifecycle
  (``configure`` / ``install`` / ``reset`` / ``finalise``).
* :mod:`~repro.obs.report` -- ``repro obs report`` rendering.
* :mod:`~repro.obs.bridge` -- snapshots → PR 8 trajectory store.

``report`` and ``bridge`` are *not* imported here: they pull in
:mod:`repro.bench`, whose harness imports the (obs-instrumented) core --
importing them at package load would close an import cycle.  The CLI and
tests import them as submodules (``from repro.obs import report``).
"""

from .metrics import (
    LATENCY_BOUNDS,
    SIZE_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    merge_snapshots,
)
from .runtime import (
    configure,
    counter,
    event,
    finalise,
    gauge,
    histogram,
    install,
    metrics,
    on,
    reset,
    span,
    tracer,
)
from .schema import TraceSchemaError, validate_event, validate_trace_path
from .trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "LATENCY_BOUNDS",
    "NULL_TRACER",
    "SIZE_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "TraceSchemaError",
    "configure",
    "counter",
    "event",
    "finalise",
    "gauge",
    "histogram",
    "install",
    "merge_snapshots",
    "metrics",
    "on",
    "reset",
    "span",
    "tracer",
    "validate_event",
    "validate_trace_path",
]
