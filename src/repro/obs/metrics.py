"""Zero-dependency metrics: counters, gauges, fixed-bucket histograms.

The registry is the *persistent* half of the observability layer (the
tracer in :mod:`repro.obs.trace` is the streaming half): every subsystem
increments counters and observes latencies into one process-local
:class:`MetricsRegistry`, and a snapshot of it -- a plain JSON-able dict --
is what ``!metrics`` returns, what the final trace ``snapshot`` event
records, and what :mod:`repro.obs.bridge` feeds into the benchmark
trajectory store.

Three design points:

* **Fixed buckets.**  Histograms bucket into *fixed* bounds chosen at
  creation (:data:`LATENCY_BOUNDS` power-of-two seconds for timings,
  :data:`SIZE_BOUNDS` power-of-four counts for set sizes), so observing is
  one bisect plus one list increment -- no per-observation allocation --
  and two histograms over the same bounds merge by adding count vectors.
  p50/p99 are interpolated from the buckets on demand, never stored.
* **Mergeable snapshots.**  :func:`merge_snapshots` is a pure function:
  counters and histogram count vectors add, gauges add (every gauge in the
  taxonomy is a size, for which summing across workers is the fleet
  total).  This is the worker→front-end contract of ``!metrics``: each
  forked serving worker snapshots its own registry and the front end folds
  the snapshots into its own -- without mutating any registry, so repeated
  ``!metrics`` calls never double-count.
* **Settable counters.**  A :class:`Counter`'s value is a plain attribute.
  Hot paths that already keep their own Python counters (the session's
  ``served`` / ``cache_hits``) are *synced* into the registry at snapshot
  time instead of paying a registry call per request -- which is how the
  disabled-instrumentation path stays at zero per-request overhead.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BOUNDS",
    "MetricsError",
    "MetricsRegistry",
    "SIZE_BOUNDS",
    "merge_snapshots",
]

#: Power-of-two second buckets, ~1 µs to ~32 s: wide enough for a cache
#: hit and a cold orkut-scale build stage in one taxonomy.
LATENCY_BOUNDS = tuple(2.0 ** exponent for exponent in range(-20, 6))

#: Power-of-four count buckets for set sizes (affected edges, cache sizes).
SIZE_BOUNDS = tuple(float(4 ** exponent) for exponent in range(0, 16))


class MetricsError(ValueError):
    """A metric was re-registered with an incompatible shape."""


class Counter:
    """A monotone event count; ``value`` is settable for snapshot-time sync."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level (cache size, worker count)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket distribution with on-demand interpolated quantiles.

    ``bounds`` are the ascending upper edges of the first ``len(bounds)``
    buckets; one overflow bucket catches everything above the last edge.
    An observation lands in the first bucket whose upper edge is >= the
    value (``bisect_left``), so merging requires only equal bounds.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: tuple = LATENCY_BOUNDS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricsError(f"histogram bounds must be ascending, got {bounds!r}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def quantile(self, q: float) -> float:
        """Interpolated quantile from the bucket counts (0 for empty).

        Deterministic: the target rank is placed linearly inside its
        bucket between the bucket's lower and upper edge (the overflow
        bucket reports the last finite edge), so equal snapshots always
        render equal quantiles -- the byte-stability the golden report
        tests pin.
        """
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        target = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[min(index, len(self.bounds) - 1)]
                fraction = (target - seen) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            seen += bucket_count
        return self.bounds[-1]  # pragma: no cover - arithmetic backstop

    def summary(self) -> dict:
        """JSON-able snapshot: bounds, counts, count, sum, mean, p50/p99."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named metrics of one process, created on first use.

    Names follow the dotted span taxonomy (``serve.request_seconds``,
    ``parallel.degraded_total``); re-requesting a name returns the same
    instance, and requesting a histogram under different bounds raises
    :class:`MetricsError` rather than silently forking the metric.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str, bounds: tuple | None = None) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(
                bounds if bounds is not None else LATENCY_BOUNDS
            )
        elif bounds is not None and tuple(float(b) for b in bounds) != histogram.bounds:
            raise MetricsError(
                f"histogram {name!r} already registered with different bounds"
            )
        return histogram

    def snapshot(self) -> dict:
        """JSON-able state of every metric, keys sorted for byte-stability."""
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }


def merge_snapshots(base: dict, other: dict) -> dict:
    """Fold snapshot ``other`` into a copy of snapshot ``base`` (pure).

    Counters add, gauges add (the taxonomy's gauges are sizes, so the sum
    is the fleet total), histograms add their count vectors -- which
    requires equal bounds and raises :class:`MetricsError` otherwise,
    because silently mixing bucket layouts would render nonsense
    quantiles.  Metrics present on only one side are kept as-is.
    """
    merged = {
        "counters": dict(base.get("counters", {})),
        "gauges": dict(base.get("gauges", {})),
        "histograms": {
            name: dict(summary)
            for name, summary in base.get("histograms", {}).items()
        },
    }
    for name, value in other.get("counters", {}).items():
        merged["counters"][name] = merged["counters"].get(name, 0) + value
    for name, value in other.get("gauges", {}).items():
        merged["gauges"][name] = merged["gauges"].get(name, 0.0) + value
    for name, summary in other.get("histograms", {}).items():
        mine = merged["histograms"].get(name)
        if mine is None:
            merged["histograms"][name] = dict(summary)
            continue
        if list(mine["bounds"]) != list(summary["bounds"]):
            raise MetricsError(
                f"cannot merge histogram {name!r}: bucket bounds differ"
            )
        counts = [a + b for a, b in zip(mine["counts"], summary["counts"])]
        rebuilt = Histogram(tuple(mine["bounds"]))
        rebuilt.counts = counts
        rebuilt.count = mine["count"] + summary["count"]
        rebuilt.total = mine["sum"] + summary["sum"]
        merged["histograms"][name] = rebuilt.summary()
    # Sorted at every level so a merged snapshot serialises byte-stably.
    return {
        "counters": dict(sorted(merged["counters"].items())),
        "gauges": dict(sorted(merged["gauges"].items())),
        "histograms": dict(sorted(merged["histograms"].items())),
    }
