"""Bridge observability snapshots into the benchmark trajectory store.

PR 8's sqlite store tracks (benchmark, rung, cell, metric) cells across
runs; this module reshapes a metrics snapshot or trace summary into the
same payload shape every ``BENCH_*.json`` runner records, so request
latency histograms and restart counters join the cross-PR trajectory
report next to throughput numbers -- one history for how fast the system
is *and* how it behaved getting there.

Histogram bucket vectors are deliberately dropped here: the store wants
scalar cells it can compare run-over-run (count, sum, mean, p50, p99),
not 27-element count arrays that would flatten into meaningless
per-bucket cells.
"""

from __future__ import annotations

from pathlib import Path

from ..bench.recording import record_payload
from .report import summarize_trace

__all__ = ["record_snapshot", "record_trace", "snapshot_payload", "trace_payload"]

_HISTOGRAM_FIELDS = ("count", "sum", "mean", "p50", "p99")


def snapshot_payload(snapshot: dict, *, benchmark: str = "observability") -> dict:
    """Reshape a metrics snapshot into a bench-store payload."""
    payload: dict = {"benchmark": benchmark}
    if snapshot.get("counters"):
        payload["counters"] = dict(snapshot["counters"])
    if snapshot.get("gauges"):
        payload["gauges"] = dict(snapshot["gauges"])
    histograms = {
        name: {field: summary.get(field, 0) for field in _HISTOGRAM_FIELDS}
        for name, summary in snapshot.get("histograms", {}).items()
    }
    if histograms:
        payload["histograms"] = histograms
    return payload


def trace_payload(path: str | Path, *, benchmark: str = "observability") -> dict:
    """Reshape a trace file's summary into a bench-store payload."""
    summary = summarize_trace(path)
    payload: dict = {"benchmark": benchmark, "trace_lines": summary["lines"]}
    if summary["spans"]:
        payload["spans"] = {name: dict(s) for name, s in summary["spans"].items()}
    if summary["events"]:
        payload["events"] = dict(summary["events"])
    if summary["snapshot"] is not None:
        embedded = snapshot_payload(summary["snapshot"], benchmark=benchmark)
        embedded.pop("benchmark")
        payload.update(embedded)
    return payload


def record_snapshot(
    db_path: Path,
    snapshot: dict,
    *,
    benchmark: str = "observability",
    source: str = "obs",
) -> int:
    """Record one metrics snapshot into the trajectory store; return run id."""
    return record_payload(
        db_path, snapshot_payload(snapshot, benchmark=benchmark), source=source
    )


def record_trace(
    db_path: Path,
    trace_path: str | Path,
    *,
    benchmark: str = "observability",
    source: str = "obs",
) -> int:
    """Record one trace file's summary into the trajectory store."""
    return record_payload(
        db_path, trace_payload(trace_path, benchmark=benchmark), source=source
    )
