"""Process-global observability state: one registry, one tracer.

Instrumented subsystems (serving, parallel construction, dynamic
updates, storage) import this module and call :func:`span` /
:func:`event` / :func:`counter` without threading an observability
object through every signature -- the alternative would touch dozens of
call chains for a cross-cutting concern.  The state is deliberately
process-local: forked serving workers call :func:`reset` first thing so
they never inherit (and double-count) the parent's registry, then
:func:`configure` their own per-worker trace file.

By default the tracer is :data:`~repro.obs.trace.NULL_TRACER` and the
registry exists but is only written by cold paths (restarts,
degradations, stage timings) or at snapshot time -- which is what keeps
the disabled path within noise of uninstrumented code.  Hot per-request
paths additionally gate on :func:`on` so even the null-span call is
skipped when tracing is off.
"""

from __future__ import annotations

import time

from .metrics import MetricsRegistry
from .trace import NULL_TRACER, Tracer

__all__ = [
    "configure",
    "counter",
    "event",
    "finalise",
    "gauge",
    "histogram",
    "install",
    "metrics",
    "on",
    "reset",
    "span",
    "tracer",
]


class _State:
    __slots__ = ("registry", "tracer")

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.tracer = NULL_TRACER


_STATE = _State()


# -- accessors -------------------------------------------------------------
def metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _STATE.registry


def tracer():
    """The active tracer (:data:`NULL_TRACER` unless configured)."""
    return _STATE.tracer


def on() -> bool:
    """True when tracing is enabled -- the hot-path gate."""
    return _STATE.tracer.enabled


# -- convenience forwarding (the call sites' whole vocabulary) -------------
def span(name: str, **attrs):
    return _STATE.tracer.span(name, **attrs)


def event(name: str, **attrs) -> None:
    _STATE.tracer.event(name, **attrs)


def counter(name: str):
    return _STATE.registry.counter(name)


def gauge(name: str):
    return _STATE.registry.gauge(name)


def histogram(name: str, bounds: tuple | None = None):
    return _STATE.registry.histogram(name, bounds)


# -- lifecycle -------------------------------------------------------------
def configure(trace_path, *, clock=time.perf_counter) -> Tracer:
    """Enable tracing to ``trace_path`` (closing any previous file tracer)."""
    previous = _STATE.tracer
    _STATE.tracer = Tracer.to_path(trace_path, clock=clock)
    previous.close()
    return _STATE.tracer


def install(*, tracer=None, registry=None) -> tuple:
    """Swap in a tracer and/or registry; returns the previous pair.

    The test-suite seam: install a tracer over an in-memory sink with a
    fake clock, run the code under test, restore the previous pair in a
    ``finally`` -- no file system, byte-stable output.
    """
    previous = (_STATE.tracer, _STATE.registry)
    if tracer is not None:
        _STATE.tracer = tracer
    if registry is not None:
        _STATE.registry = registry
    return previous


def reset() -> None:
    """Fresh registry + null tracer (first statement of forked workers)."""
    _STATE.tracer.close()
    _STATE.tracer = NULL_TRACER
    _STATE.registry = MetricsRegistry()


def finalise(name: str = "final") -> None:
    """Write a closing metrics snapshot, then disable and close the tracer.

    A traced CLI run ends with this, so every trace file is
    self-contained: the spans carry the timeline, the final ``snapshot``
    line carries the aggregate histograms and counters.
    """
    active = _STATE.tracer
    if active.enabled:
        active.snapshot(name, _STATE.registry.snapshot())
    _STATE.tracer = NULL_TRACER
    active.close()
