"""Fully vectorised batch similarity engine (the ``"batch"`` backend).

The reference ``"merge"`` backend of :mod:`repro.similarity.exact` walks the
degree-oriented CSR one arc at a time and calls ``np.intersect1d`` per arc,
which caps construction at Python-interpreter speed.  This module executes
the *same* algorithm array-at-once:

1. expand the oriented arcs into flat ``(arc, candidate)`` pairs, where the
   candidates of arc ``u -> v`` are the out-neighbors of ``v`` (memory use is
   bounded by processing the pairs in chunks of ``chunk_pairs``);
2. test every candidate ``x`` for membership in ``out(u)`` with one of two
   probe strategies (see :data:`PROBE_STRATEGIES` and :func:`resolve_probe`):
   ``"global"`` searches the memoised composite keys ``source * n + target``
   of the whole oriented CSR with a single C-speed ``np.searchsorted``
   (``O(log 2m)`` per probe); ``"bounded"`` runs a per-source-segment
   simultaneous binary search (:func:`~repro.parallel.primitives.
   segmented_searchsorted`) restricted to ``u``'s out-segment, costing only
   ``O(log max_out_degree)`` *rounds* of whole-array passes for the entire
   chunk.  Which one wins is a constant-factor question -- the bounded
   search does asymptotically less comparison work but pays numpy-pass
   overhead per round, so it only overtakes the C binary search when
   out-segments are very short -- and ``"auto"`` (the default) picks by the
   measured crossover; ``BENCH_hot_paths.json`` records both strategies on
   every benchmark rung;
3. scatter the three per-triangle contributions onto the canonical edge ids
   (``np.add.at`` semantics, executed via ``np.bincount`` which is
   dramatically faster for large scatters).

Because the batch engine performs exactly the intersection work of the merge
engine, it charges *identical* work/span to the scheduler: per oriented arc
``u -> v`` with a non-empty ``out(v)``, a merge cost of
``outdeg(u) + outdeg(v)``, with the span of the largest single merge plus the
fork-tree depth on top.  Tests assert this equality, which pins the cost
model while the execution strategy differs.

:func:`edge_numerators_for_subset` applies the same treatment to an arbitrary
subset of edges (probing the smaller endpoint's neighborhood against the
larger one's), which is what the LSH low-degree fallback in
:mod:`repro.lsh.approximate` batches its exact similarities with.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..parallel.metrics import ceil_log2
from ..parallel.primitives import segmented_ranges, segmented_searchsorted
from ..parallel.scheduler import Scheduler

#: Default bound on the number of ``(arc, candidate)`` pairs materialised at
#: once; 2**22 pairs is ~100 MB of transient arrays, far below graph size for
#: the scales this engine targets while keeping each chunk BLAS-friendly.
DEFAULT_CHUNK_PAIRS = 1 << 22

#: Membership-probe strategies of the batch engine (see module docstring).
PROBE_STRATEGIES = ("auto", "global", "bounded")

#: ``"auto"`` switches to the bounded segmented probe when the longest
#: searched segment needs at most this many binary-search rounds.  Measured
#: crossover (``BENCH_hot_paths.json``, probe microbenchmark): each bounded
#: round costs several whole-array numpy passes, so the C-speed global search
#: wins unless segments are short enough to resolve in a handful of rounds.
BOUNDED_PROBE_MAX_ROUNDS = 3


def resolve_probe(probe: str, max_segment_length: int) -> str:
    """Resolve ``"auto"`` to a concrete probe strategy for a given workload."""
    if probe not in PROBE_STRATEGIES:
        raise ValueError(f"unknown probe strategy {probe!r}; expected one of {PROBE_STRATEGIES}")
    if probe != "auto":
        return probe
    if max_segment_length <= (1 << BOUNDED_PROBE_MAX_ROUNDS):
        return "bounded"
    return "global"


def accumulate_oriented_contributions(
    out: np.ndarray,
    oriented: tuple,
    sources: np.ndarray,
    comp: np.ndarray | None,
    num_vertices: int,
    arc_range_start: int,
    arc_range_end: int,
    *,
    chunk_pairs: int,
    probe: str,
) -> None:
    """Add triangle contributions of oriented arcs ``[start, end)`` onto ``out``.

    The memory-bounded chunk loop of the batch engine, restricted to a
    contiguous range of oriented arcs: both the serial all-arc pass and
    every shard of the multicore execution layer
    (:mod:`repro.parallel.execute`) run exactly this function, which is what
    keeps the process-parallel similarity pass bit-identical to the serial
    one on unweighted graphs (all contributions are integers, so the shard
    merge order cannot matter).  ``probe`` must already be concrete
    (``"global"`` requires ``comp``, the sentinel-terminated composite keys
    of the whole orientation).
    """
    indptr, targets, edge_ids, weights = oriented
    num_edges = int(out.shape[0])
    num_oriented = int(targets.shape[0])
    arc_range_start = int(arc_range_start)
    arc_range_end = int(arc_range_end)
    # Pair counts only over this range: a shard of the multicore layer must
    # not pay an O(all arcs) pass before its own work starts.  The chunking
    # below indexes through ``range_counts``/``range_cumulative`` with
    # range-relative positions; everything touching the CSR arrays stays
    # absolute.
    out_degrees = np.diff(indptr)
    range_counts = out_degrees[targets[arc_range_start:arc_range_end]]
    range_cumulative = np.cumsum(range_counts)
    arc_start = arc_range_start
    while arc_start < arc_range_end:
        relative_start = arc_start - arc_range_start
        base = int(range_cumulative[relative_start - 1]) if relative_start else 0
        arc_end = arc_range_start + int(
            np.searchsorted(range_cumulative, base + chunk_pairs, side="right")
        )
        arc_end = min(max(arc_end, arc_start + 1), arc_range_end)
        counts = range_counts[relative_start:arc_end - arc_range_start]
        chunk_total = int(counts.sum())
        if chunk_total == 0:
            arc_start = arc_end
            continue
        # (arc, candidate) pair expansion for this chunk: the candidates of
        # arc u -> v are the positions of v's out-segment.
        pair_arc = np.repeat(np.arange(arc_start, arc_end, dtype=np.int64), counts)
        candidate_pos = segmented_ranges(indptr[targets[arc_start:arc_end]], counts)
        queries = targets[candidate_pos]
        if probe == "global":
            keys = (
                np.repeat(sources[arc_start:arc_end] * np.int64(num_vertices), counts)
                + queries
            )
            locations = np.searchsorted(comp[:num_oriented], keys)
            # A miss past the end lands on the sentinel and compares unequal.
            found = comp[locations] == keys
        else:
            # Bounded probe: candidate x of arc u -> v is searched only
            # within u's out-segment, all probes advancing together.
            pair_sources = np.repeat(sources[arc_start:arc_end], counts)
            seg_ends = indptr[pair_sources + 1]
            locations = segmented_searchsorted(
                targets, queries, indptr[pair_sources], seg_ends
            )
            # A probe that exhausts its segment stops at seg_ends; clip
            # before gathering so the comparison stays in bounds (and fails).
            found = (locations < seg_ends) & (
                targets[np.minimum(locations, num_oriented - 1)] == queries
            )
        if found.any():
            arc_uv = pair_arc[found]       # oriented position of edge (u, v)
            arc_ux = locations[found]      # position of x in out(u)
            arc_vx = candidate_pos[found]  # position of x in out(v)
            w_uv = weights[arc_uv]
            w_ux = weights[arc_ux]
            w_vx = weights[arc_vx]
            # Triangle {u, v, x}: each edge gains the product of the other two.
            out += np.bincount(
                edge_ids[arc_uv], weights=w_ux * w_vx, minlength=num_edges
            )
            out += np.bincount(
                edge_ids[arc_ux], weights=w_uv * w_vx, minlength=num_edges
            )
            out += np.bincount(
                edge_ids[arc_vx], weights=w_uv * w_ux, minlength=num_edges
            )
        arc_start = arc_end


def batch_numerators(
    graph: Graph,
    scheduler: Scheduler,
    *,
    chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
    probe: str = "auto",
    executor=None,
) -> np.ndarray:
    """Closed-neighborhood dot product of every edge, with no per-arc loop.

    Returns the same numerator array as ``_numerators_merge`` (up to float
    summation order) and charges the same work/span.  ``probe`` selects the
    membership-probe strategy (module docstring); the default picks by the
    measured crossover.  ``executor`` -- a
    :class:`~repro.parallel.execute.ParallelExecutor` -- shards the pass
    across worker processes for unweighted graphs (bit-identical: integer
    contributions merge exactly); weighted graphs ignore it and stay serial
    so float summation order is preserved.
    """
    if chunk_pairs < 1:
        raise ValueError(f"chunk_pairs must be positive, got {chunk_pairs}")
    oriented = graph.degree_oriented_csr()
    indptr, targets, edge_ids, weights = oriented
    num_edges = graph.num_edges
    numerators = np.zeros(num_edges, dtype=np.float64)
    # Base term: x = u and x = v both belong to the closed intersection and
    # contribute w(u,v) * 1 each.
    if graph.edge_weights is None:
        numerators += 2.0
    else:
        numerators += 2.0 * graph.edge_weights

    num_oriented = int(targets.shape[0])
    if num_oriented == 0:
        scheduler.charge(0.0, ceil_log2(max(num_edges, 1)) + 1.0)
        return numerators

    out_degrees = np.diff(indptr)
    sources = graph.oriented_arc_sources()
    probe = resolve_probe(probe, int(out_degrees.max(initial=0)))
    comp = None
    if probe == "global":
        # Strictly increasing composite key of every oriented arc (memoised
        # on the graph, with a trailing sentinel for bounds-free misses).
        comp = graph.oriented_search_keys()
    n = graph.num_vertices

    # Cost model: identical to the merge backend.  Arcs whose target has no
    # out-neighbors are skipped there before any cost accrues.  The maximum
    # per-arc span is ceil_log2 of the maximum cost (ceil_log2 is monotone).
    pair_counts = out_degrees[targets]
    active = pair_counts > 0
    if active.any():
        costs = out_degrees[sources[active]] + pair_counts[active]
        total_work = float(costs.sum())
        max_span = ceil_log2(int(costs.max())) + 1.0
    else:
        total_work = 0.0
        max_span = 0.0

    contributions = None
    if executor is not None:
        contributions = executor.sharded_numerators(
            graph, probe=probe, chunk_pairs=chunk_pairs
        )
    if contributions is not None:
        numerators += contributions
    else:
        accumulate_oriented_contributions(
            numerators, oriented, sources, comp, n, 0, num_oriented,
            chunk_pairs=chunk_pairs, probe=probe,
        )

    scheduler.charge(total_work, max_span + ceil_log2(max(num_edges, 1)) + 1.0)
    return numerators


def edge_numerators_for_subset(
    graph: Graph,
    edge_ids: np.ndarray,
    scheduler: Scheduler,
    *,
    chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
    probe: str = "auto",
) -> np.ndarray:
    """Closed-neighborhood dot products of the selected edges only.

    For each requested edge the smaller-degree endpoint's neighborhood probes
    the larger one's, exactly the strategy of Algorithm 1 restricted to a
    subset, but run as chunked array passes instead of per-edge Python loops.
    Charges ``deg(smaller endpoint) + 1`` work per edge with the span of the
    largest single probe, matching the scalar fallback it replaces.
    """
    edge_ids = np.asarray(edge_ids, dtype=np.int64)
    num_selected = int(edge_ids.shape[0])
    if num_selected == 0:
        return np.zeros(0, dtype=np.float64)
    edge_u_all, edge_v_all = graph.edge_list()
    degrees = graph.degrees
    u = edge_u_all[edge_ids]
    v = edge_v_all[edge_ids]
    swap = degrees[u] > degrees[v]
    u, v = np.where(swap, v, u), np.where(swap, u, v)

    num_arcs = graph.num_arcs
    probe = resolve_probe(probe, int(degrees[v].max(initial=0)))
    if probe == "global":
        n = graph.num_vertices
        comp = graph.arc_search_keys()
    counts = degrees[u]
    costs = counts + 1
    total_work = float(costs.sum())
    max_span = ceil_log2(int(costs.max())) + 1.0

    numerators = np.zeros(num_selected, dtype=np.float64)
    cumulative = np.cumsum(counts)
    edge_start = 0
    while edge_start < num_selected:
        base = int(cumulative[edge_start - 1]) if edge_start else 0
        edge_end = int(np.searchsorted(cumulative, base + chunk_pairs, side="right"))
        edge_end = min(max(edge_end, edge_start + 1), num_selected)
        chunk_counts = counts[edge_start:edge_end]
        chunk_total = int(chunk_counts.sum())
        if chunk_total == 0:
            edge_start = edge_end
            continue
        pair_edge = np.repeat(np.arange(edge_start, edge_end, dtype=np.int64), chunk_counts)
        probe_pos = segmented_ranges(graph.indptr[u[edge_start:edge_end]], chunk_counts)
        candidates = graph.indices[probe_pos]
        if probe == "global":
            keys = v[pair_edge] * np.int64(n) + candidates
            locations = np.searchsorted(comp[:num_arcs], keys)
            # A miss past the end lands on the sentinel and compares unequal.
            found = comp[locations] == keys
        else:
            # Bounded probe of candidate x within v's neighbor segment only.
            pair_v = v[pair_edge]
            seg_ends = graph.indptr[pair_v + 1]
            locations = segmented_searchsorted(
                graph.indices, candidates, graph.indptr[pair_v], seg_ends
            )
            found = (locations < seg_ends) & (
                graph.indices[np.minimum(locations, num_arcs - 1)] == candidates
            )
        if found.any():
            if graph.arc_weights is None:
                contributions = np.ones(int(np.count_nonzero(found)), dtype=np.float64)
            else:
                contributions = (
                    graph.arc_weights[probe_pos[found]]
                    * graph.arc_weights[locations[found]]
                )
            numerators += np.bincount(
                pair_edge[found], weights=contributions, minlength=num_selected
            )
        edge_start = edge_end

    if graph.edge_weights is None:
        numerators += 2.0
    else:
        numerators += 2.0 * graph.edge_weights[edge_ids]
    scheduler.charge(total_work, max_span + ceil_log2(max(num_selected, 1)) + 1.0)
    return numerators
