"""Set- and vector-level structural similarity measures.

SCAN scores the similarity of two *adjacent* vertices by comparing their
closed neighborhoods.  The original paper uses cosine similarity of the
closed neighborhoods; follow-up work (and GS*-Index) also considers Jaccard
and Dice similarity, and the paper generalises cosine to weighted graphs.

The functions in this module operate on explicit sets / weight vectors and
serve as the *reference definitions*: the optimised all-edge engines in
:mod:`repro.similarity.exact` are validated against them in the test suite.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..graphs.graph import Graph

#: Names of the supported structural similarity measures.
MEASURES = ("cosine", "jaccard", "dice")


def jaccard_similarity(a: Sequence[int] | np.ndarray, b: Sequence[int] | np.ndarray) -> float:
    """Jaccard similarity ``|A ∩ B| / |A ∪ B|`` of two sets (0 when both empty)."""
    set_a, set_b = set(map(int, a)), set(map(int, b))
    union = len(set_a | set_b)
    if union == 0:
        return 0.0
    return len(set_a & set_b) / union


def cosine_similarity_sets(a: Sequence[int] | np.ndarray, b: Sequence[int] | np.ndarray) -> float:
    """Cosine similarity ``|A ∩ B| / sqrt(|A| |B|)`` of two sets (0 when either empty)."""
    set_a, set_b = set(map(int, a)), set(map(int, b))
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / math.sqrt(len(set_a) * len(set_b))


def dice_similarity(a: Sequence[int] | np.ndarray, b: Sequence[int] | np.ndarray) -> float:
    """Dice similarity ``2 |A ∩ B| / (|A| + |B|)`` of two sets (0 when both empty)."""
    set_a, set_b = set(map(int, a)), set(map(int, b))
    total = len(set_a) + len(set_b)
    if total == 0:
        return 0.0
    return 2.0 * len(set_a & set_b) / total


def weighted_cosine_similarity(
    items_a: Sequence[int],
    weights_a: Sequence[float],
    items_b: Sequence[int],
    weights_b: Sequence[float],
) -> float:
    """Weighted cosine similarity of two sparse weight vectors.

    ``items_*`` list the non-zero coordinates and ``weights_*`` their values.
    Returns 0 when either vector is all zero.
    """
    map_a = {int(item): float(weight) for item, weight in zip(items_a, weights_a)}
    map_b = {int(item): float(weight) for item, weight in zip(items_b, weights_b)}
    numerator = sum(weight * map_b[item] for item, weight in map_a.items() if item in map_b)
    norm_a = math.sqrt(sum(weight * weight for weight in map_a.values()))
    norm_b = math.sqrt(sum(weight * weight for weight in map_b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return numerator / (norm_a * norm_b)


def cosine_similarity_vectors(u: np.ndarray, v: np.ndarray) -> float:
    """Cosine similarity of two dense vectors (0 when either is the zero vector)."""
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    norm_u = float(np.linalg.norm(u))
    norm_v = float(np.linalg.norm(v))
    if norm_u == 0.0 or norm_v == 0.0:
        return 0.0
    return float(u @ v) / (norm_u * norm_v)


def angle_between(u: np.ndarray, v: np.ndarray) -> float:
    """Angle in radians between two non-zero vectors, clamped to ``[0, π]``."""
    cosine = cosine_similarity_vectors(u, v)
    return math.acos(min(1.0, max(-1.0, cosine)))


def closed_neighborhood_weights(graph: Graph, v: int) -> tuple[np.ndarray, np.ndarray]:
    """Closed neighborhood of ``v`` and the matching weight vector.

    Follows the paper's convention ``w(v, v) = 1`` for the self coordinate;
    for unweighted graphs all weights are 1.
    """
    neighbors = graph.neighbors(v)
    weights = graph.neighbor_weights(v)
    # Routed through the graph's batched probe helper (bounded segmented
    # search) rather than a scalar np.searchsorted over the neighbor slice.
    positions, _ = graph.locate_neighbors(np.array([v]), np.array([v]))
    position = int(positions[0]) - int(graph.indptr[v])
    items = np.insert(neighbors, position, v)
    values = np.insert(weights, position, 1.0)
    return items, values


def edge_similarity_reference(graph: Graph, u: int, v: int, measure: str = "cosine") -> float:
    """Similarity of adjacent vertices straight from the definition.

    This is the slow, obviously correct implementation used to validate the
    all-edge engines.  ``measure`` is one of ``cosine``, ``jaccard``, ``dice``;
    weighted graphs only support ``cosine`` (the weighted generalisation).
    """
    if measure not in MEASURES:
        raise ValueError(f"unknown measure {measure!r}; expected one of {MEASURES}")
    if not graph.has_edge(u, v):
        raise KeyError(f"({u}, {v}) is not an edge")
    if graph.is_weighted:
        if measure != "cosine":
            raise ValueError(f"weighted graphs only support cosine similarity, got {measure!r}")
        items_u, weights_u = closed_neighborhood_weights(graph, u)
        items_v, weights_v = closed_neighborhood_weights(graph, v)
        return weighted_cosine_similarity(items_u, weights_u, items_v, weights_v)
    closed_u = graph.closed_neighborhood(u)
    closed_v = graph.closed_neighborhood(v)
    if measure == "cosine":
        return cosine_similarity_sets(closed_u, closed_v)
    if measure == "jaccard":
        return jaccard_similarity(closed_u, closed_v)
    return dice_similarity(closed_u, closed_v)
