"""Exact all-edge structural similarity computation (Algorithm 1 and Section 6.1).

Four interchangeable backends compute the similarity score of every edge.
The backend matrix -- what each one does, its charged work bound, and when to
pick it:

=========  ==================================================  =======================
backend    strategy                                            when to pick it
=========  ==================================================  =======================
``batch``  the merge strategy executed array-at-once: flat     **default.**  Fastest
           ``(arc, candidate)`` pair expansion in memory-       wall-clock on every
           bounded chunks, one ``np.searchsorted`` over the     graph size; zero
           oriented CSR's composite keys, ``np.bincount``       Python-level per-arc
           scatter-adds.  Charges the same ``O(m^{3/2})``       iteration.
           work / ``O(log n)`` span as ``merge``.
``merge``  the optimisation the paper's implementation uses:    cross-checking
           orient each edge toward its higher-degree            reference for
           endpoint and, per remaining arc, merge the two       ``batch`` (identical
           sorted out-neighbor lists (``np.intersect1d``).      charges, scalar
           Each triangle is found exactly once.  Work           execution); small
           ``O(m^{3/2})``, span ``O(log n)``.                   graphs.
``hash``   the faithful rendering of Algorithm 1: a lazily      reference backend for
           built per-vertex hash table of neighbors, probed     tests; the paper's
           with the lower-degree endpoint's neighbors.          ``O(α m)`` work bound
           Work ``O(Σ min(d_u, d_v)) ⊆ O(α m)``.                analysis.
``matmul`` the numerators of all similarities are the           small *dense* graphs
           entries of ``W²`` where ``W`` is the weight          where ``n²`` memory is
           matrix with unit diagonal (Section 4.1.1);           acceptable and BLAS
           BLAS-backed matrix multiplication, ``O(n^ω)``        wins outright.
           work.
=========  ==================================================  =======================

All backends return an :class:`EdgeSimilarities` holding one score per
canonical edge of the graph and agree to within float summation order
(property tests assert 1e-9 agreement across random graphs and measures).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..parallel.metrics import ceil_log2
from ..parallel.scheduler import Scheduler
from .batch import batch_numerators
from .measures import MEASURES

#: Backends accepted by :func:`compute_similarities`.
BACKENDS = ("batch", "merge", "hash", "matmul")


@dataclass
class EdgeSimilarities:
    """Similarity score for every canonical edge of a graph.

    Attributes
    ----------
    graph:
        The graph the scores belong to.
    values:
        Float array of length ``graph.num_edges`` aligned with the canonical
        edge ids.
    measure:
        The similarity measure the scores were computed with (``cosine``,
        ``jaccard``, ``dice``, or their ``approx_``-prefixed variants).
    backend:
        The engine that produced the scores (``batch``, ``merge``, ``hash``,
        ``matmul``, ``lsh``); informational, recorded in saved artifacts.
    numerators:
        Optional closed-neighborhood dot products the scores were finalised
        from (one per edge).  The exact backends attach them; the dynamic
        update subsystem uses them to recompute only the *triangle-affected*
        numerators of a batch and re-finalise everything else from stored
        values (see :mod:`repro.dynamic`).  ``None`` for LSH estimates and
        hand-assembled score arrays, in which case updates fall back to a
        wider recompute.
    """

    graph: Graph
    values: np.ndarray
    measure: str
    backend: str = ""
    numerators: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.shape[0] != self.graph.num_edges:
            raise ValueError(
                f"expected {self.graph.num_edges} similarity values, got {self.values.shape[0]}"
            )
        if self.numerators is not None:
            self.numerators = np.asarray(self.numerators, dtype=np.float64)
            if self.numerators.shape[0] != self.graph.num_edges:
                raise ValueError(
                    f"expected {self.graph.num_edges} numerators, "
                    f"got {self.numerators.shape[0]}"
                )

    def of(self, u: int, v: int) -> float:
        """Similarity of the edge ``{u, v}``."""
        return float(self.values[self.graph.edge_id(u, v)])

    def arc_values(self) -> np.ndarray:
        """Scores replicated per arc, aligned with the graph's CSR ``indices``."""
        return self.values[self.graph.arc_edge_ids]

    def __len__(self) -> int:
        return int(self.values.shape[0])


def _closed_norms(graph: Graph, scheduler: Scheduler) -> np.ndarray:
    """Per-vertex norm ``sqrt(Σ_{x ∈ N̄(v)} w(v,x)²)`` with ``w(v,v) = 1``."""
    n = graph.num_vertices
    if graph.arc_weights is None:
        norms = np.sqrt(graph.degrees.astype(np.float64) + 1.0)
    else:
        squared = np.zeros(n, dtype=np.float64)
        np.add.at(squared, graph.arc_sources(), graph.arc_weights ** 2)
        norms = np.sqrt(squared + 1.0)
    scheduler.charge(graph.num_arcs + n, ceil_log2(max(n, 1)) + 1.0)
    return norms


def _numerators_merge(graph: Graph, scheduler: Scheduler) -> np.ndarray:
    """Closed-neighborhood dot product of every edge via oriented merges."""
    oriented = graph.degree_oriented_csr()
    numerators = np.zeros(graph.num_edges, dtype=np.float64)
    # Base term: x = u and x = v both belong to the closed intersection and
    # contribute w(u,v) * 1 each.
    if graph.edge_weights is None:
        numerators += 2.0
    else:
        numerators += 2.0 * graph.edge_weights

    indptr, indices, edge_ids, weights = oriented
    n = graph.num_vertices
    # The per-arc merges run as one flat parallel loop: work adds up across
    # arcs, span is the maximum single merge plus the fork-tree depth.
    total_work = 0.0
    max_span = 0.0
    for u in range(n):
        start_u, end_u = int(indptr[u]), int(indptr[u + 1])
        if start_u == end_u:
            continue
        out_u = indices[start_u:end_u]
        eid_u = edge_ids[start_u:end_u]
        w_u = weights[start_u:end_u]
        for position in range(start_u, end_u):
            v = int(indices[position])
            start_v, end_v = int(indptr[v]), int(indptr[v + 1])
            if start_v == end_v:
                continue
            out_v = indices[start_v:end_v]
            cost = (end_u - start_u) + (end_v - start_v)
            total_work += cost
            max_span = max(max_span, ceil_log2(max(cost, 1)) + 1.0)
            shared, in_u, in_v = np.intersect1d(
                out_u, out_v, assume_unique=True, return_indices=True
            )
            if shared.shape[0] == 0:
                continue
            eid_v = edge_ids[start_v:end_v]
            w_v = weights[start_v:end_v]
            edge_uv = int(edge_ids[position])
            weight_uv = float(weights[position])
            w_ux = w_u[in_u]
            w_vx = w_v[in_v]
            # Triangle {u, v, x}: each edge gains the product of the other two.
            numerators[edge_uv] += float(np.dot(w_ux, w_vx))
            np.add.at(numerators, eid_u[in_u], weight_uv * w_vx)
            np.add.at(numerators, eid_v[in_v], weight_uv * w_ux)
    scheduler.charge(total_work, max_span + ceil_log2(max(graph.num_edges, 1)) + 1.0)
    return numerators


def _numerators_hash(graph: Graph, scheduler: Scheduler) -> np.ndarray:
    """Closed-neighborhood dot products following Algorithm 1 literally."""
    numerators = np.zeros(graph.num_edges, dtype=np.float64)
    edge_u, edge_v = graph.edge_list()
    weighted = graph.arc_weights is not None
    # neighbor_tables[v]: mapping neighbor -> weight, the "hash set" of Alg. 1.
    # Built lazily so only the vertices actually probed (the higher-degree
    # endpoint of some edge) pay for a table; on an edge subset or a skewed
    # graph most vertices never need one.
    neighbor_tables: dict[int, dict[int, float]] = {}
    table_build_work = 0

    def neighbor_table(vertex: int) -> dict[int, float]:
        nonlocal table_build_work
        table = neighbor_tables.get(vertex)
        if table is None:
            table = dict(
                zip(
                    graph.neighbors(vertex).tolist(),
                    graph.neighbor_weights(vertex).tolist(),
                )
            )
            neighbor_tables[vertex] = table
            table_build_work += len(table)
        return table

    total_work = 0.0
    max_span = 0.0
    for edge in range(graph.num_edges):
        u, v = int(edge_u[edge]), int(edge_v[edge])
        if graph.degree(u) > graph.degree(v):
            u, v = v, u
        table_v = neighbor_table(v)
        neighbors_u = graph.neighbors(u)
        weights_u = graph.neighbor_weights(u)
        total_work += neighbors_u.shape[0]
        max_span = max(max_span, ceil_log2(max(neighbors_u.shape[0], 1)) + 1.0)
        total = 0.0
        for x, w_ux in zip(neighbors_u.tolist(), weights_u.tolist()):
            w_vx = table_v.get(x)
            if w_vx is not None:
                total += w_ux * w_vx
        weight_uv = graph.edge_weight(u, v) if weighted else 1.0
        numerators[edge] = total + 2.0 * weight_uv
    # Tables of the probed vertices build as one parallel step...
    scheduler.charge(table_build_work, ceil_log2(max(graph.num_vertices, 1)) + 1.0)
    # ... followed by one parallel loop over the edges (Algorithm 1, line 7).
    scheduler.charge(total_work, max_span + ceil_log2(max(graph.num_edges, 1)) + 1.0)
    return numerators


def _numerators_matmul(graph: Graph, scheduler: Scheduler) -> np.ndarray:
    """Closed-neighborhood dot products via the squared weight matrix."""
    n = graph.num_vertices
    matrix = graph.adjacency_matrix(include_self_loops=True)
    scheduler.charge(float(n) ** 2.373, 2 * ceil_log2(max(n, 1)) + 1.0)
    squared = matrix @ matrix
    edge_u, edge_v = graph.edge_list()
    return squared[edge_u, edge_v]


def _finalise(
    graph: Graph,
    numerators: np.ndarray,
    measure: str,
    scheduler: Scheduler,
) -> np.ndarray:
    """Turn closed-intersection numerators into the requested similarity.

    The subset branch of :func:`finalise_numerators` below mirrors these
    expressions edge for edge; any change here must land there too, or
    dynamically patched indexes stop being bit-identical to rebuilds.
    """
    edge_u, edge_v = graph.edge_list()
    scheduler.charge(graph.num_edges, ceil_log2(max(graph.num_edges, 1)) + 1.0)
    if measure == "cosine":
        norms = _closed_norms(graph, scheduler)
        return numerators / (norms[edge_u] * norms[edge_v])
    closed_u = graph.degrees[edge_u].astype(np.float64) + 1.0
    closed_v = graph.degrees[edge_v].astype(np.float64) + 1.0
    if measure == "jaccard":
        return numerators / (closed_u + closed_v - numerators)
    # Dice.
    return 2.0 * numerators / (closed_u + closed_v)


def finalise_numerators(
    graph: Graph,
    numerators: np.ndarray,
    measure: str,
    *,
    edge_ids: np.ndarray | None = None,
    scheduler: Scheduler | None = None,
) -> np.ndarray:
    """Similarity scores from closed-neighborhood dot products.

    With ``edge_ids`` the computation restricts to that subset of canonical
    edges (``numerators`` then aligns with ``edge_ids``), applying the same
    elementwise expressions as the all-edge path -- which is what lets the
    dynamic update subsystem (:mod:`repro.dynamic`) re-finalise only the
    affected edges **bit-identically** to a full build.
    """
    scheduler = scheduler if scheduler is not None else Scheduler()
    if edge_ids is None:
        return _finalise(graph, numerators, measure, scheduler)
    edge_ids = np.asarray(edge_ids, dtype=np.int64)
    edge_u = graph.edge_u[edge_ids]
    edge_v = graph.edge_v[edge_ids]
    degrees = graph.degrees
    scheduler.charge(edge_ids.shape[0], ceil_log2(max(edge_ids.shape[0], 1)) + 1.0)
    if measure == "cosine":
        if graph.arc_weights is None:
            norm_u = np.sqrt(degrees[edge_u].astype(np.float64) + 1.0)
            norm_v = np.sqrt(degrees[edge_v].astype(np.float64) + 1.0)
        else:
            # Weighted norms of just the touched endpoints: one bincount
            # over their gathered arcs instead of a whole-graph scatter.
            from ..parallel.primitives import segmented_ranges

            endpoints = np.unique(np.concatenate([edge_u, edge_v]))
            counts = degrees[endpoints]
            positions = segmented_ranges(graph.indptr[endpoints], counts)
            segment = np.repeat(
                np.arange(endpoints.shape[0], dtype=np.int64), counts
            )
            squared = np.bincount(
                segment,
                weights=graph.arc_weights[positions] ** 2,
                minlength=endpoints.shape[0],
            )
            norms = np.sqrt(squared + 1.0)
            norm_u = norms[np.searchsorted(endpoints, edge_u)]
            norm_v = norms[np.searchsorted(endpoints, edge_v)]
        return numerators / (norm_u * norm_v)
    closed_u = degrees[edge_u].astype(np.float64) + 1.0
    closed_v = degrees[edge_v].astype(np.float64) + 1.0
    if measure == "jaccard":
        return numerators / (closed_u + closed_v - numerators)
    # Dice.
    return 2.0 * numerators / (closed_u + closed_v)


def compute_similarities(
    graph: Graph,
    *,
    measure: str = "cosine",
    backend: str = "batch",
    scheduler: Scheduler | None = None,
    executor=None,
) -> EdgeSimilarities:
    """Similarity score of every edge of ``graph``.

    Parameters
    ----------
    graph:
        Input graph.  Weighted graphs require ``measure="cosine"``.
    measure:
        ``"cosine"``, ``"jaccard"`` or ``"dice"``.
    backend:
        ``"batch"`` (default, the vectorised merge strategy), ``"merge"``
        (Section 6.1), ``"hash"`` (Algorithm 1) or ``"matmul"`` (dense
        graphs, Section 4.1.1).  See the module docstring for the full
        backend matrix.
    scheduler:
        Work-span accounting target; a fresh throw-away scheduler is used
        when omitted.
    executor:
        Optional :class:`~repro.parallel.execute.ParallelExecutor` sharding
        the ``batch`` backend's pass across worker processes (unweighted
        graphs; other backends and weighted graphs run serially and ignore
        it).  The result is bit-identical either way.
    """
    if measure not in MEASURES:
        raise ValueError(f"unknown measure {measure!r}; expected one of {MEASURES}")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if graph.is_weighted and measure != "cosine":
        raise ValueError("weighted graphs only support the (weighted) cosine measure")
    scheduler = scheduler if scheduler is not None else Scheduler()

    if graph.num_edges == 0:
        empty = np.zeros(0, dtype=np.float64)
        return EdgeSimilarities(graph, empty, measure, backend, numerators=empty.copy())

    if backend == "batch":
        numerators = batch_numerators(graph, scheduler, executor=executor)
    elif backend == "merge":
        numerators = _numerators_merge(graph, scheduler)
    elif backend == "hash":
        numerators = _numerators_hash(graph, scheduler)
    else:
        numerators = _numerators_matmul(graph, scheduler)

    values = _finalise(graph, numerators, measure, scheduler)
    return EdgeSimilarities(graph, values, measure, backend, numerators=numerators)
