"""Structural similarity measures and the exact all-edge similarity engines."""

from .measures import (
    MEASURES,
    angle_between,
    closed_neighborhood_weights,
    cosine_similarity_sets,
    cosine_similarity_vectors,
    dice_similarity,
    edge_similarity_reference,
    jaccard_similarity,
    weighted_cosine_similarity,
)
from .batch import batch_numerators, edge_numerators_for_subset
from .exact import BACKENDS, EdgeSimilarities, compute_similarities

__all__ = [
    "MEASURES",
    "angle_between",
    "closed_neighborhood_weights",
    "cosine_similarity_sets",
    "cosine_similarity_vectors",
    "dice_similarity",
    "edge_similarity_reference",
    "jaccard_similarity",
    "weighted_cosine_similarity",
    "BACKENDS",
    "EdgeSimilarities",
    "batch_numerators",
    "compute_similarities",
    "edge_numerators_for_subset",
]
