"""Adjusted Rand Index (Hubert & Arabie 1985) between two clusterings.

The paper uses the ARI to compare the clustering obtained with approximate
similarities against the "ground truth" clustering obtained with exact
similarities at the same parameter setting (Figure 10).  Unclustered vertices
are treated as singleton clusters so the comparison is over full partitions.
"""

from __future__ import annotations

import numpy as np

from ..core.clustering import UNCLUSTERED, Clustering


def _labels_of(clustering: Clustering | np.ndarray) -> np.ndarray:
    if isinstance(clustering, Clustering):
        return clustering.labels
    return np.asarray(clustering, dtype=np.int64)


def _expand_singletons(labels: np.ndarray) -> np.ndarray:
    labels = labels.copy()
    unclustered = labels == UNCLUSTERED
    if unclustered.any():
        base = int(labels.max(initial=0)) + 1
        labels[unclustered] = base + np.arange(int(unclustered.sum()), dtype=np.int64)
    return labels


def _pairs(counts: np.ndarray) -> float:
    """Sum of ``count choose 2`` over an array of counts."""
    counts = counts.astype(np.float64)
    return float((counts * (counts - 1.0) / 2.0).sum())


def adjusted_rand_index(
    proposed: Clustering | np.ndarray,
    ground_truth: Clustering | np.ndarray,
    *,
    unclustered_as_singletons: bool = True,
) -> float:
    """ARI between a proposed clustering and a ground-truth clustering.

    Returns 1.0 for identical partitions, about 0 for independent ones, and
    may be negative for partitions that agree less than chance.
    """
    labels_a = _labels_of(proposed)
    labels_b = _labels_of(ground_truth)
    if labels_a.shape != labels_b.shape:
        raise ValueError("clusterings must be over the same vertex set")
    n = int(labels_a.shape[0])
    if n == 0:
        return 1.0
    if unclustered_as_singletons:
        labels_a = _expand_singletons(labels_a)
        labels_b = _expand_singletons(labels_b)

    _, dense_a = np.unique(labels_a, return_inverse=True)
    _, dense_b = np.unique(labels_b, return_inverse=True)
    num_a = int(dense_a.max()) + 1
    num_b = int(dense_b.max()) + 1

    # Contingency table in sparse form: count co-occurrences of (a, b) labels.
    joint = dense_a.astype(np.int64) * num_b + dense_b
    joint_values, joint_counts = np.unique(joint, return_counts=True)

    sum_joint_pairs = _pairs(joint_counts)
    sum_a_pairs = _pairs(np.bincount(dense_a, minlength=num_a))
    sum_b_pairs = _pairs(np.bincount(dense_b, minlength=num_b))
    total_pairs = n * (n - 1) / 2.0

    expected = sum_a_pairs * sum_b_pairs / total_pairs if total_pairs else 0.0
    maximum = (sum_a_pairs + sum_b_pairs) / 2.0
    denominator = maximum - expected
    if denominator == 0.0:
        # Both partitions are all-singletons or a single cluster: identical.
        return 1.0
    return float((sum_joint_pairs - expected) / denominator)


def rand_index(
    proposed: Clustering | np.ndarray,
    ground_truth: Clustering | np.ndarray,
) -> float:
    """Unadjusted Rand index (fraction of vertex pairs on which both agree)."""
    labels_a = _expand_singletons(_labels_of(proposed))
    labels_b = _expand_singletons(_labels_of(ground_truth))
    if labels_a.shape != labels_b.shape:
        raise ValueError("clusterings must be over the same vertex set")
    n = int(labels_a.shape[0])
    if n < 2:
        return 1.0
    _, dense_a = np.unique(labels_a, return_inverse=True)
    _, dense_b = np.unique(labels_b, return_inverse=True)
    num_b = int(dense_b.max()) + 1
    joint = dense_a.astype(np.int64) * num_b + dense_b
    _, joint_counts = np.unique(joint, return_counts=True)
    sum_joint = _pairs(joint_counts)
    sum_a = _pairs(np.bincount(dense_a))
    sum_b = _pairs(np.bincount(dense_b))
    total = n * (n - 1) / 2.0
    agreements = total + 2.0 * sum_joint - sum_a - sum_b
    return float(agreements / total)
