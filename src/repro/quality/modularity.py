"""Modularity of a clustering (Newman & Girvan 2004; weighted form Newman 2004).

The paper uses modularity as its clustering-quality heuristic (Section 7.2):
the fraction of edge weight that falls within clusters minus the fraction
expected in a random graph with the same degree sequence.  Unclustered
vertices are treated as singleton clusters, exactly as in the paper's
experiments.
"""

from __future__ import annotations

import numpy as np

from ..core.clustering import UNCLUSTERED, Clustering
from ..graphs.graph import Graph


def _labels_of(clustering: Clustering | np.ndarray) -> np.ndarray:
    if isinstance(clustering, Clustering):
        return clustering.labels
    return np.asarray(clustering, dtype=np.int64)


def _singleton_expanded_labels(labels: np.ndarray) -> np.ndarray:
    """Replace each UNCLUSTERED label with a fresh singleton cluster id."""
    labels = labels.copy()
    unclustered = labels == UNCLUSTERED
    if unclustered.any():
        base = int(labels.max(initial=0)) + 1
        labels[unclustered] = base + np.arange(int(unclustered.sum()), dtype=np.int64)
    return labels


def modularity(
    graph: Graph,
    clustering: Clustering | np.ndarray,
    *,
    unclustered_as_singletons: bool = True,
) -> float:
    """Modularity of ``clustering`` on ``graph`` (weighted when the graph is).

    ``Q = Σ_c [ w_in(c) / W  -  (deg_w(c) / 2W)² ]`` where ``w_in(c)`` is the
    total weight of edges inside cluster ``c``, ``deg_w(c)`` the total
    weighted degree of its vertices, and ``W`` the total edge weight.

    ``unclustered_as_singletons`` places every unclustered vertex in its own
    cluster (the paper's convention); otherwise unclustered vertices are
    ignored entirely (they contribute neither internal edges nor degree).
    """
    labels = _labels_of(clustering)
    if labels.shape[0] != graph.num_vertices:
        raise ValueError("clustering must label every vertex of the graph")
    if graph.num_edges == 0:
        return 0.0

    if unclustered_as_singletons:
        labels = _singleton_expanded_labels(labels)

    edge_u, edge_v = graph.edge_list()
    if graph.edge_weights is None:
        edge_weights = np.ones(graph.num_edges, dtype=np.float64)
    else:
        edge_weights = graph.edge_weights
    total_weight = float(edge_weights.sum())

    clustered = labels != UNCLUSTERED
    _, dense = np.unique(labels, return_inverse=True)
    num_clusters = int(dense.max()) + 1 if labels.size else 0

    # Weighted degree of every vertex, then aggregated per cluster.
    weighted_degree = np.zeros(graph.num_vertices, dtype=np.float64)
    np.add.at(weighted_degree, edge_u, edge_weights)
    np.add.at(weighted_degree, edge_v, edge_weights)

    internal = np.zeros(num_clusters, dtype=np.float64)
    same_cluster = clustered[edge_u] & clustered[edge_v] & (labels[edge_u] == labels[edge_v])
    np.add.at(internal, dense[edge_u[same_cluster]], edge_weights[same_cluster])

    cluster_degree = np.zeros(num_clusters, dtype=np.float64)
    np.add.at(cluster_degree, dense[clustered], weighted_degree[clustered])

    return float(
        (internal / total_weight).sum()
        - ((cluster_degree / (2.0 * total_weight)) ** 2).sum()
    )


def coverage(graph: Graph, clustering: Clustering | np.ndarray) -> float:
    """Fraction of edge weight that falls inside clusters (the first modularity term)."""
    labels = _labels_of(clustering)
    if graph.num_edges == 0:
        return 0.0
    edge_u, edge_v = graph.edge_list()
    weights = (
        np.ones(graph.num_edges, dtype=np.float64)
        if graph.edge_weights is None
        else graph.edge_weights
    )
    internal = (
        (labels[edge_u] == labels[edge_v])
        & (labels[edge_u] != UNCLUSTERED)
        & (labels[edge_v] != UNCLUSTERED)
    )
    return float(weights[internal].sum() / weights.sum())
