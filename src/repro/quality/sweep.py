"""Parameter sweeps over the SCAN parameter grid Σ (Equation 1 of the paper).

Users of SCAN do not know good values of (μ, ε) in advance; the whole point
of the index is that trying many settings is cheap.  The paper's quality
experiments search the grid

    Σ = {2, 4, 8, ..., 2^18} × {0.01, 0.02, ..., 0.99}

for the modularity-maximising setting.  These helpers reproduce that sweep
(with the μ range clipped to the graph's maximum closed degree, above which
no cores exist).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.clustering import Clustering
from ..core.index import ScanIndex
from ..graphs.graph import Graph
from .modularity import modularity


def mu_grid(max_mu: int, *, upper_exponent: int = 18) -> list[int]:
    """Powers of two ``2, 4, 8, ...`` clipped to ``min(2^upper_exponent, max_mu)``."""
    values: list[int] = []
    mu = 2
    while mu <= min(max_mu, 1 << upper_exponent):
        values.append(mu)
        mu <<= 1
    return values or [2]


def epsilon_grid(step: float = 0.01) -> np.ndarray:
    """The ε grid ``{step, 2·step, ..., < 1}`` (default 0.01 .. 0.99)."""
    if not 0.0 < step < 1.0:
        raise ValueError("step must lie in (0, 1)")
    count = int(round((1.0 - step) / step))
    return np.round(np.arange(1, count + 1) * step, 10)


def parameter_grid(
    graph: Graph,
    *,
    epsilon_step: float = 0.01,
    upper_exponent: int = 18,
) -> list[tuple[int, float]]:
    """All ``(μ, ε)`` pairs of the paper's grid Σ applicable to ``graph``."""
    max_mu = graph.max_degree + 1
    return [
        (mu, float(eps))
        for mu in mu_grid(max_mu, upper_exponent=upper_exponent)
        for eps in epsilon_grid(epsilon_step)
    ]


@dataclass(frozen=True)
class SweepEntry:
    """Quality of one parameter setting visited by a sweep."""

    mu: int
    epsilon: float
    modularity: float
    num_clusters: int
    num_clustered: int


@dataclass
class SweepResult:
    """Outcome of a modularity sweep over a parameter grid."""

    entries: list[SweepEntry]

    @property
    def best(self) -> SweepEntry:
        """Entry with the highest modularity (ties to the earliest entry)."""
        if not self.entries:
            raise ValueError("sweep produced no entries")
        return max(self.entries, key=lambda entry: entry.modularity)

    def best_parameters(self) -> tuple[int, float]:
        """The modularity-maximising ``(μ, ε)``."""
        best = self.best
        return best.mu, best.epsilon


def modularity_sweep(
    index: ScanIndex,
    *,
    parameters: Iterable[tuple[int, float]] | None = None,
    epsilon_step: float = 0.05,
    deterministic_borders: bool = True,
) -> SweepResult:
    """Query the index over a parameter grid and score each clustering.

    ``epsilon_step`` defaults to a coarser grid than the paper's 0.01 so that
    laptop-scale runs stay fast; pass ``parameters=parameter_grid(graph)``
    for the full Σ.

    The grid is answered through :meth:`ScanIndex.query_many
    <repro.core.index.ScanIndex.query_many>` one ε-group at a time -- the
    planner's unit of reuse (settings sharing an ε share one gathered arc
    set and one union-find forest) -- and each group's clusterings are
    scored and dropped before the next group runs, so peak memory stays at
    one group's clusterings rather than the whole grid's.
    """
    graph = index.graph
    if parameters is None:
        parameters = parameter_grid(graph, epsilon_step=epsilon_step)
    parameters = list(parameters)
    groups: dict[float, list[int]] = {}
    for position, (_, epsilon) in enumerate(parameters):
        groups.setdefault(float(epsilon), []).append(position)
    entries: list[SweepEntry | None] = [None] * len(parameters)
    for positions in groups.values():
        group_parameters = [parameters[position] for position in positions]
        clusterings = index.query_many(
            group_parameters, deterministic_borders=deterministic_borders
        )
        for position, (mu, epsilon), clustering in zip(
            positions, group_parameters, clusterings
        ):
            entries[position] = SweepEntry(
                mu=mu,
                epsilon=epsilon,
                modularity=modularity(graph, clustering),
                num_clusters=clustering.num_clusters,
                num_clustered=clustering.num_clustered_vertices,
            )
    return SweepResult(entries)  # type: ignore[arg-type]


def best_clustering(
    index: ScanIndex,
    *,
    parameters: Sequence[tuple[int, float]] | None = None,
    epsilon_step: float = 0.05,
) -> tuple[Clustering, SweepEntry]:
    """The modularity-maximising clustering of an index over a grid."""
    sweep = modularity_sweep(index, parameters=parameters, epsilon_step=epsilon_step)
    best = sweep.best
    clustering = index.query(best.mu, best.epsilon, deterministic_borders=True)
    return clustering, best
