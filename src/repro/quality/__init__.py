"""Clustering quality measures: modularity, adjusted Rand index, parameter sweeps."""

from .modularity import coverage, modularity
from .ari import adjusted_rand_index, rand_index
from .sweep import (
    SweepEntry,
    SweepResult,
    best_clustering,
    epsilon_grid,
    modularity_sweep,
    mu_grid,
    parameter_grid,
)

__all__ = [
    "coverage",
    "modularity",
    "adjusted_rand_index",
    "rand_index",
    "SweepEntry",
    "SweepResult",
    "best_clustering",
    "epsilon_grid",
    "modularity_sweep",
    "mu_grid",
    "parameter_grid",
]
