"""Open-addressing hash table in the style of the GBBS phase-concurrent table.

The paper's implementation relies on the phase-concurrent hash table of Shun
and Blelloch for neighborhood lookups (Algorithm 1) and for the hash maps used
by query post-processing (Algorithm 4).  This module provides a from-scratch
linear-probing table over 64-bit integer keys with the same *phase* discipline:
a batch of inserts, then a batch of lookups, never interleaved.  Batch
operations charge the bounds quoted in Section 2.3.2 (``O(k)`` work and
``O(log* k)`` span for ``k`` inserts, ``O(1)`` work per lookup).

The table is used where the algorithms genuinely need hashing semantics (set
membership for arbitrary vertex ids).  Hot paths that can use dense arrays
instead (cluster-id arrays indexed by vertex) do so, mirroring the
optimisations described in Section 6.2 of the paper.
"""

from __future__ import annotations

import numpy as np

from .metrics import ceil_log2
from .primitives import LOG_STAR_SPAN
from .scheduler import Scheduler

_EMPTY = np.int64(-1)
#: Multiplicative constant of the Fibonacci / multiply-shift hash.
_HASH_MULTIPLIER = 0x9E3779B97F4A7C15
_WORD_MASK = (1 << 64) - 1


def _hash_key(key: int) -> int:
    """64-bit multiply-shift hash of a non-negative integer key."""
    return ((int(key) * _HASH_MULTIPLIER) & _WORD_MASK) >> 40


def _next_power_of_two(n: int) -> int:
    """Smallest power of two that is at least ``n`` (and at least 8)."""
    size = 8
    while size < n:
        size <<= 1
    return size


class ParallelHashSet:
    """Linear-probing hash set of non-negative 64-bit integer keys."""

    def __init__(self, expected_size: int = 8, *, load_factor: float = 0.5) -> None:
        if not 0.0 < load_factor < 1.0:
            raise ValueError(f"load_factor must be in (0, 1), got {load_factor}")
        self._load_factor = load_factor
        capacity = _next_power_of_two(max(8, int(expected_size / load_factor) + 1))
        self._slots = np.full(capacity, _EMPTY, dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Number of slots currently allocated."""
        return int(self._slots.shape[0])

    def _probe(self, key: int) -> int:
        """Return the slot index holding ``key``, or the first empty slot."""
        mask = self.capacity - 1
        index = _hash_key(key) & mask
        slots = self._slots
        while slots[index] != _EMPTY and slots[index] != key:
            index = (index + 1) & mask
        return index

    def _maybe_grow(self, incoming: int) -> None:
        if (self._size + incoming) / self.capacity <= self._load_factor:
            return
        old_keys = self._slots[self._slots != _EMPTY]
        capacity = _next_power_of_two(
            max(8, int((self._size + incoming) / self._load_factor) + 1)
        )
        self._slots = np.full(capacity, _EMPTY, dtype=np.int64)
        self._size = 0
        for key in old_keys:
            self._insert_one(int(key))

    def _insert_one(self, key: int) -> None:
        slot = self._probe(key)
        if self._slots[slot] == _EMPTY:
            self._slots[slot] = key
            self._size += 1

    def add(self, key: int) -> None:
        """Insert a single key (idempotent)."""
        if key < 0:
            raise ValueError(f"keys must be non-negative, got {key}")
        self._maybe_grow(1)
        self._insert_one(int(key))

    def add_batch(self, scheduler: Scheduler, keys: np.ndarray) -> None:
        """Insert a batch of keys.  Work O(k), span O(log* k)."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and int(keys.min()) < 0:
            raise ValueError("keys must be non-negative")
        scheduler.charge(int(keys.size), LOG_STAR_SPAN)
        self._maybe_grow(int(keys.size))
        for key in keys:
            self._insert_one(int(key))

    def __contains__(self, key: int) -> bool:
        if key < 0:
            return False
        return self._slots[self._probe(int(key))] == key

    def contains_batch(self, scheduler: Scheduler, keys: np.ndarray) -> np.ndarray:
        """Membership test for a batch of keys.  Work O(k), span O(log k)."""
        keys = np.asarray(keys, dtype=np.int64)
        scheduler.charge(int(keys.size), ceil_log2(int(keys.size)) + 1.0)
        return np.fromiter((int(k) in self for k in keys), dtype=bool, count=keys.size)

    def to_array(self) -> np.ndarray:
        """All stored keys, in unspecified order."""
        return np.sort(self._slots[self._slots != _EMPTY])


class ParallelHashMap:
    """Linear-probing hash map from non-negative int64 keys to int64 values."""

    def __init__(self, expected_size: int = 8, *, load_factor: float = 0.5) -> None:
        if not 0.0 < load_factor < 1.0:
            raise ValueError(f"load_factor must be in (0, 1), got {load_factor}")
        self._load_factor = load_factor
        capacity = _next_power_of_two(max(8, int(expected_size / load_factor) + 1))
        self._keys = np.full(capacity, _EMPTY, dtype=np.int64)
        self._values = np.zeros(capacity, dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Number of slots currently allocated."""
        return int(self._keys.shape[0])

    def _probe(self, key: int) -> int:
        mask = self.capacity - 1
        index = _hash_key(key) & mask
        keys = self._keys
        while keys[index] != _EMPTY and keys[index] != key:
            index = (index + 1) & mask
        return index

    def _maybe_grow(self, incoming: int) -> None:
        if (self._size + incoming) / self.capacity <= self._load_factor:
            return
        occupied = self._keys != _EMPTY
        old_keys = self._keys[occupied]
        old_values = self._values[occupied]
        capacity = _next_power_of_two(
            max(8, int((self._size + incoming) / self._load_factor) + 1)
        )
        self._keys = np.full(capacity, _EMPTY, dtype=np.int64)
        self._values = np.zeros(capacity, dtype=np.int64)
        self._size = 0
        for key, value in zip(old_keys, old_values):
            self._set_one(int(key), int(value))

    def _set_one(self, key: int, value: int) -> None:
        slot = self._probe(key)
        if self._keys[slot] == _EMPTY:
            self._keys[slot] = key
            self._size += 1
        self._values[slot] = value

    def __setitem__(self, key: int, value: int) -> None:
        if key < 0:
            raise ValueError(f"keys must be non-negative, got {key}")
        self._maybe_grow(1)
        self._set_one(int(key), int(value))

    def __getitem__(self, key: int) -> int:
        slot = self._probe(int(key))
        if self._keys[slot] == _EMPTY:
            raise KeyError(key)
        return int(self._values[slot])

    def get(self, key: int, default: int | None = None) -> int | None:
        """Value stored for ``key``, or ``default`` when absent."""
        slot = self._probe(int(key))
        if self._keys[slot] == _EMPTY:
            return default
        return int(self._values[slot])

    def __contains__(self, key: int) -> bool:
        if key < 0:
            return False
        return self._keys[self._probe(int(key))] != _EMPTY

    def set_batch(self, scheduler: Scheduler, keys: np.ndarray, values: np.ndarray) -> None:
        """Insert key/value pairs.  Work O(k), span O(log* k)."""
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if keys.shape != values.shape:
            raise ValueError("keys and values must have equal length")
        scheduler.charge(int(keys.size), LOG_STAR_SPAN)
        self._maybe_grow(int(keys.size))
        for key, value in zip(keys, values):
            self._set_one(int(key), int(value))

    def items(self) -> list[tuple[int, int]]:
        """All stored pairs, sorted by key (for deterministic iteration)."""
        occupied = self._keys != _EMPTY
        pairs = sorted(zip(self._keys[occupied].tolist(), self._values[occupied].tolist()))
        return [(int(k), int(v)) for k, v in pairs]
