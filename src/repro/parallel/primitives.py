"""Data-parallel array primitives with work-span accounting.

These mirror the primitives listed in Section 2.3.2 of the paper: ``reduce``,
``filter``, ``scan`` (prefix sums), and ``remove duplicates``.  Each function
takes the :class:`~repro.parallel.scheduler.Scheduler` whose counter should be
charged; the actual computation is delegated to numpy where that is natural so
the primitives are also fast in wall-clock terms.

Work/span charges follow the bounds quoted in the paper:

============================  ==========  ============
primitive                     work        span
============================  ==========  ============
reduce / filter / scan        O(n)        O(log n)
remove duplicates (hashing)   O(n)        O(log* n)
============================  ==========  ============
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from .metrics import ceil_log2
from .scheduler import Scheduler

T = TypeVar("T")

#: Span charged for hash-table based primitives; stands in for O(log* n),
#: which is at most 5 for any input that fits in memory.
LOG_STAR_SPAN = 5.0


def parallel_reduce(
    scheduler: Scheduler,
    values: Sequence[float] | np.ndarray,
    operation: Callable[[np.ndarray], float] = np.sum,
) -> float:
    """Reduce ``values`` with an associative ``operation`` (default: sum).

    Work O(n), span O(log n).
    """
    array = np.asarray(values)
    n = int(array.size)
    scheduler.charge(n, ceil_log2(n) + 1.0)
    if n == 0:
        return float(operation(np.zeros(1))) * 0.0
    return float(operation(array))


def parallel_max(scheduler: Scheduler, values: Sequence[float] | np.ndarray) -> float:
    """Maximum element of ``values``.  Work O(n), span O(log n)."""
    array = np.asarray(values)
    if array.size == 0:
        raise ValueError("parallel_max of an empty sequence")
    scheduler.charge(int(array.size), ceil_log2(int(array.size)) + 1.0)
    return float(array.max())


def parallel_filter(
    scheduler: Scheduler,
    values: np.ndarray,
    mask: np.ndarray,
) -> np.ndarray:
    """Keep the entries of ``values`` whose ``mask`` entry is truthy.

    ``mask`` must have the same length as ``values``.  Work O(n), span O(log n)
    (a filter is a map plus a prefix sum plus a scatter).
    """
    values = np.asarray(values)
    mask = np.asarray(mask, dtype=bool)
    if values.shape[0] != mask.shape[0]:
        raise ValueError(
            f"values and mask must have equal length, got {values.shape[0]} and {mask.shape[0]}"
        )
    n = int(values.shape[0])
    scheduler.charge(2 * n, 2 * ceil_log2(n) + 1.0)
    return values[mask]


def parallel_pack_indices(scheduler: Scheduler, mask: np.ndarray) -> np.ndarray:
    """Return the indices at which ``mask`` is truthy, in increasing order.

    Work O(n), span O(log n).
    """
    mask = np.asarray(mask, dtype=bool)
    n = int(mask.shape[0])
    scheduler.charge(2 * n, 2 * ceil_log2(n) + 1.0)
    return np.flatnonzero(mask)


def parallel_scan(
    scheduler: Scheduler,
    values: np.ndarray,
    *,
    inclusive: bool = False,
) -> tuple[np.ndarray, float]:
    """Prefix-sum ``values``; returns ``(prefix_array, total)``.

    The exclusive scan (default) returns, at position ``i``, the sum of
    ``values[:i]``.  Work O(n), span O(log n).
    """
    array = np.asarray(values)
    n = int(array.shape[0])
    scheduler.charge(2 * n, 2 * ceil_log2(n) + 1.0)
    if n == 0:
        return np.zeros(0, dtype=array.dtype), 0.0
    running = np.cumsum(array)
    total = float(running[-1])
    if inclusive:
        return running, total
    exclusive = np.empty_like(running)
    exclusive[0] = 0
    exclusive[1:] = running[:-1]
    return exclusive, total


def parallel_map_array(
    scheduler: Scheduler,
    values: np.ndarray,
    fn: Callable[[np.ndarray], np.ndarray],
    *,
    work_per_item: float = 1.0,
) -> np.ndarray:
    """Apply a vectorised elementwise ``fn`` over ``values``.

    Work O(n * work_per_item), span O(log n).
    """
    array = np.asarray(values)
    n = int(array.shape[0])
    scheduler.charge(n * work_per_item, ceil_log2(n) + 1.0)
    return fn(array)


def remove_duplicates(scheduler: Scheduler, values: np.ndarray) -> np.ndarray:
    """Return the distinct values of ``values`` (order not specified).

    Implemented with hashing semantics; charged the hash-table bound of
    O(n) work and O(log* n) span from the paper.
    """
    array = np.asarray(values)
    n = int(array.shape[0])
    scheduler.charge(n, LOG_STAR_SPAN)
    return np.unique(array)


def parallel_count(scheduler: Scheduler, mask: np.ndarray) -> int:
    """Count truthy entries of ``mask``.  Work O(n), span O(log n)."""
    mask = np.asarray(mask, dtype=bool)
    n = int(mask.shape[0])
    scheduler.charge(n, ceil_log2(n) + 1.0)
    return int(mask.sum())


def parallel_flatten(
    scheduler: Scheduler,
    chunks: Sequence[np.ndarray],
) -> np.ndarray:
    """Concatenate variable-length chunks into one array.

    Implemented as a scan over chunk lengths followed by parallel copies,
    so the charge is O(total length) work and O(log n) span.
    """
    if not chunks:
        scheduler.charge(1, 1)
        return np.zeros(0, dtype=np.int64)
    total = int(sum(int(np.asarray(chunk).shape[0]) for chunk in chunks))
    scheduler.charge(total + len(chunks), ceil_log2(max(len(chunks), 1)) + 1.0)
    return np.concatenate([np.asarray(chunk) for chunk in chunks]) if total else np.zeros(
        0, dtype=np.asarray(chunks[0]).dtype
    )


def segmented_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(counts[i])`` for every segment ``i``.

    The pair-expansion step the vectorised engines are built on: a flat index
    within each segment, computed with one scan and two gathers (no scheduler
    charge -- callers account for the expansion as part of the surrounding
    parallel step).
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def segmented_searchsorted(
    values: np.ndarray,
    queries: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
) -> np.ndarray:
    """Per-query lower-bound binary search bounded to a segment of ``values``.

    For every query ``i`` the search runs over ``values[starts[i]:ends[i]]``
    (which must be sorted ascending) and returns the absolute position of the
    first entry ``>= queries[i]`` (``ends[i]`` when every entry is smaller).
    All queries advance *simultaneously*: the loop below runs
    ``O(log max_segment_length)`` rounds of whole-array compares, never one
    iteration per query, so the log factor is the segment length rather than
    the length of ``values`` -- the point of routing adjacency probes through
    this instead of a global ``np.searchsorted`` over composite keys.
    """
    queries = np.asarray(queries)
    low = np.asarray(starts, dtype=np.int64).copy()
    high = np.asarray(ends, dtype=np.int64).copy()
    if low.shape != high.shape or low.shape != queries.shape:
        raise ValueError("queries, starts and ends must have equal shape")
    active = np.flatnonzero(low < high)
    while active.size:
        middle = (low[active] + high[active]) >> 1
        below = values[middle] < queries[active]
        low[active] = np.where(below, middle + 1, low[active])
        high[active] = np.where(below, high[active], middle)
        active = active[low[active] < high[active]]
    return low


def segmented_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[i], starts[i] + counts[i])`` per segment.

    The start-shifted variant of :func:`segmented_arange`, fused into a single
    repeat: block ``i`` is one shifted arange beginning at ``starts[i]``, so
    repeating the per-segment shift over a flat arange covers all segments at
    once.  This is the canonical gather-expansion of the vectorised engines
    (candidate positions of a CSR segment, prefix positions of an order).
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    block_starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) + np.repeat(starts - block_starts, counts)
