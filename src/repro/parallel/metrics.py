"""Work-span cost accounting for the simulated fork-join runtime.

The paper analyses algorithms in the work-span model: *work* is the total
number of operations executed and *span* (also called depth or parallel time)
is the length of the longest chain of sequentially dependent operations.  A
work-stealing scheduler runs a computation with work ``W`` and span ``S`` on
``P`` processors in ``W / P + O(S)`` expected time (Brent's bound / the
Blumofe-Leiserson scheduling theorem).

Because CPython's global interpreter lock prevents genuine shared-memory
parallelism for this kind of pointer-heavy graph code, this package *models*
parallel execution instead of timing it: every parallel primitive charges work
and span to a :class:`WorkSpanCounter`, and benchmarks convert the counters to
simulated running times via :meth:`WorkSpanCounter.simulated_time`.  Relative
comparisons between algorithms (who wins, by roughly what factor, where the
crossovers fall) are therefore preserved even though absolute wall-clock
numbers differ from the paper's 48-core C++ measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


def ceil_log2(n: int) -> float:
    """Return ``ceil(log2(n))`` for ``n >= 1`` and ``0`` for smaller inputs.

    Used to charge the depth of a balanced fork-join tree over ``n`` tasks.
    """
    if n <= 1:
        return 0.0
    return float(math.ceil(math.log2(n)))


def ceil_log2_array(values: np.ndarray) -> np.ndarray:
    """Elementwise :func:`ceil_log2` over an integer array, as float64.

    Used by the vectorised engines to charge per-segment fork-tree depths in
    one array pass.  Exact for inputs below ``2**53`` (``np.frexp`` decomposes
    ``x = m * 2**e`` with ``0.5 <= m < 1``, so ``ceil_log2(x)`` is ``e - 1``
    for exact powers of two and ``e`` otherwise), unlike a naive
    ``np.ceil(np.log2(x))`` which can be off by one at power-of-two inputs.
    """
    values = np.asarray(values)
    mantissa, exponent = np.frexp(np.maximum(values, 1).astype(np.float64))
    return np.where(mantissa == 0.5, exponent - 1, exponent).astype(np.float64)


@dataclass
class WorkSpanCounter:
    """Accumulator of work and span charges for one logical computation.

    Attributes
    ----------
    work:
        Total number of (abstract, unit-cost) operations charged so far.
    span:
        Length of the longest sequential dependence chain charged so far.
    """

    work: float = 0.0
    span: float = 0.0

    def charge(self, work: float, span: float | None = None) -> None:
        """Charge ``work`` operations with a critical path of ``span``.

        If ``span`` is omitted the charge is treated as fully sequential,
        i.e. the span equals the work.
        """
        if work < 0:
            raise ValueError(f"work must be non-negative, got {work}")
        self.work += work
        self.span += work if span is None else span

    def charge_parallel(self, work: float, fanout: int) -> None:
        """Charge a flat data-parallel step over ``fanout`` independent tasks.

        The step costs ``work`` total operations and a span of the fork-join
        tree depth plus a constant per level.
        """
        self.charge(work, ceil_log2(max(fanout, 1)) + 1.0)

    def snapshot(self) -> tuple[float, float]:
        """Return the current ``(work, span)`` pair."""
        return (self.work, self.span)

    def reset(self) -> None:
        """Zero both counters."""
        self.work = 0.0
        self.span = 0.0

    def merge_parallel(self, children: list["WorkSpanCounter"]) -> None:
        """Fold counters of independently executed child tasks into this one.

        Work adds up across children; span is the maximum child span because
        the children run concurrently.  A fork-join overhead of
        ``ceil(log2(#children))`` is charged on top.
        """
        if not children:
            return
        self.work += sum(child.work for child in children)
        self.span += max(child.span for child in children) + ceil_log2(len(children))

    def simulated_time(
        self,
        num_workers: int,
        *,
        scheduling_overhead: float = 1.0,
        seconds_per_operation: float = 1e-8,
    ) -> float:
        """Simulated running time on ``num_workers`` processors, in seconds.

        The estimate is Brent's bound ``W / P + c * S`` scaled by a nominal
        per-operation cost.  ``seconds_per_operation`` defaults to 10 ns,
        roughly one simple operation on a modern core; the constant only
        affects absolute numbers, never the relative comparisons reported in
        the benchmarks.
        """
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        abstract = self.work / num_workers + scheduling_overhead * self.span
        return abstract * seconds_per_operation

    def speedup(self, num_workers: int, **kwargs) -> float:
        """Simulated self-relative speedup of ``num_workers`` over one worker."""
        sequential = self.simulated_time(1, **kwargs)
        parallel = self.simulated_time(num_workers, **kwargs)
        if parallel == 0:
            return 1.0
        return sequential / parallel

    def copy(self) -> "WorkSpanCounter":
        """Return an independent copy of this counter."""
        return WorkSpanCounter(work=self.work, span=self.span)

    def __add__(self, other: "WorkSpanCounter") -> "WorkSpanCounter":
        """Sequential composition: works and spans both add."""
        return WorkSpanCounter(self.work + other.work, self.span + other.span)


@dataclass
class CostReport:
    """A labelled, immutable record of one measured computation.

    Benchmarks collect these to build the rows of the paper's tables.
    """

    label: str
    work: float
    span: float
    wall_seconds: float = 0.0
    details: dict = field(default_factory=dict)

    @classmethod
    def from_counter(
        cls,
        label: str,
        counter: WorkSpanCounter,
        wall_seconds: float = 0.0,
        **details,
    ) -> "CostReport":
        """Build a report from a counter plus optional measured wall time."""
        return cls(
            label=label,
            work=counter.work,
            span=counter.span,
            wall_seconds=wall_seconds,
            details=dict(details),
        )

    def simulated_time(self, num_workers: int, **kwargs) -> float:
        """Simulated time on ``num_workers`` processors (see WorkSpanCounter)."""
        counter = WorkSpanCounter(work=self.work, span=self.span)
        return counter.simulated_time(num_workers, **kwargs)
