"""Union-find (disjoint set union) in the style of GBBS ConnectIt.

Section 6.2 of the paper replaces the theoretically clean parallel
connectivity algorithm (Gazit) with a concurrent union-find, because
union-find lets the query algorithm avoid materialising the core-core
subgraph: the ε-similar core edges are simply "union"-ed and every core
vertex is then "find"-ed to obtain its cluster id.

This module provides union by rank with path compression, plus batch
operations that charge the work-span costs the paper assumes for the
connectivity step: linear work in the number of edges processed and
logarithmic span (unions of independent edges proceed concurrently in the
real implementation; we account for them as a parallel batch).
"""

from __future__ import annotations

import numpy as np

from .metrics import ceil_log2
from .scheduler import Scheduler


class UnionFind:
    """Disjoint-set forest over the vertex ids ``0 .. n-1``."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"number of elements must be non-negative, got {n}")
        self._parent = np.arange(n, dtype=np.int64)
        self._rank = np.zeros(n, dtype=np.int8)
        self._num_components = n

    def __len__(self) -> int:
        return int(self._parent.shape[0])

    @property
    def num_components(self) -> int:
        """Current number of disjoint sets."""
        return self._num_components

    def find(self, x: int) -> int:
        """Representative of the set containing ``x``, with path compression."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of ``x`` and ``y``; returns True if they were distinct."""
        root_x = self.find(x)
        root_y = self.find(y)
        if root_x == root_y:
            return False
        rank = self._rank
        if rank[root_x] < rank[root_y]:
            root_x, root_y = root_y, root_x
        self._parent[root_y] = root_x
        if rank[root_x] == rank[root_y]:
            rank[root_x] += 1
        self._num_components -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        """True when ``x`` and ``y`` are currently in the same set."""
        return self.find(x) == self.find(y)

    def union_batch(self, scheduler: Scheduler, edges_u: np.ndarray, edges_v: np.ndarray) -> None:
        """Union every pair ``(edges_u[i], edges_v[i])``.

        Charged as a concurrent batch: work linear in the number of edges,
        span logarithmic (matching the connectivity bound the query analysis
        relies on).
        """
        edges_u = np.asarray(edges_u, dtype=np.int64)
        edges_v = np.asarray(edges_v, dtype=np.int64)
        if edges_u.shape != edges_v.shape:
            raise ValueError("edge endpoint arrays must have equal length")
        scheduler.charge(int(edges_u.size), ceil_log2(int(edges_u.size)) + 1.0)
        for u, v in zip(edges_u, edges_v):
            self.union(int(u), int(v))

    def find_batch(self, scheduler: Scheduler, vertices: np.ndarray) -> np.ndarray:
        """Representatives of each vertex in ``vertices`` as an array."""
        vertices = np.asarray(vertices, dtype=np.int64)
        scheduler.charge(int(vertices.size), ceil_log2(int(vertices.size)) + 1.0)
        return np.fromiter(
            (self.find(int(v)) for v in vertices), dtype=np.int64, count=vertices.size
        )

    def component_labels(self, scheduler: Scheduler | None = None) -> np.ndarray:
        """Label array mapping each element to its component representative."""
        n = len(self)
        if scheduler is not None:
            scheduler.charge(n, ceil_log2(n) + 1.0)
        return np.fromiter((self.find(i) for i in range(n)), dtype=np.int64, count=n)
