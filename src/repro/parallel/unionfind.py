"""Union-find (disjoint set union) in the style of GBBS ConnectIt.

Section 6.2 of the paper replaces the theoretically clean parallel
connectivity algorithm (Gazit) with a concurrent union-find, because
union-find lets the query algorithm avoid materialising the core-core
subgraph: the ε-similar core edges are simply "union"-ed and every core
vertex is then "find"-ed to obtain its cluster id.

This module provides union by rank with path compression, plus batch
operations that charge the work-span costs the paper assumes for the
connectivity step: linear work in the number of edges processed and
logarithmic span (unions of independent edges proceed concurrently in the
real implementation; we account for them as a parallel batch).
"""

from __future__ import annotations

import numpy as np

from .metrics import ceil_log2
from .scheduler import Scheduler


class UnionFind:
    """Disjoint-set forest over the vertex ids ``0 .. n-1``."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"number of elements must be non-negative, got {n}")
        self._parent = np.arange(n, dtype=np.int64)
        self._rank = np.zeros(n, dtype=np.int8)
        # None marks the count stale; it is recomputed on demand.  Batch
        # unions invalidate instead of counting distinct demotions per round
        # (a hashing pass per round that the serving hot path never reads).
        self._num_components: int | None = n
        # Scalar union() is the only writer of rank; tracking it lets
        # reset_batch skip the rank restore for pure-batch usage (serving).
        self._rank_dirty = False

    def __len__(self) -> int:
        return int(self._parent.shape[0])

    @property
    def num_components(self) -> int:
        """Current number of disjoint sets.

        Maintained exactly by the scalar operations; a :meth:`union_batch`
        marks it stale and the next read recomputes it with one O(n) scan
        (a root is exactly a parent-array fixed point), so the batch query
        hot path never pays per-round component bookkeeping.
        """
        if self._num_components is None:
            n = len(self)
            self._num_components = int(
                np.count_nonzero(self._parent == np.arange(n, dtype=np.int64))
            )
        return self._num_components

    def find(self, x: int) -> int:
        """Representative of the set containing ``x``, with path compression."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of ``x`` and ``y``; returns True if they were distinct."""
        root_x = self.find(x)
        root_y = self.find(y)
        if root_x == root_y:
            return False
        rank = self._rank
        if rank[root_x] < rank[root_y]:
            root_x, root_y = root_y, root_x
        self._parent[root_y] = root_x
        if rank[root_x] == rank[root_y]:
            rank[root_x] += 1
            self._rank_dirty = True
        if self._num_components is not None:
            self._num_components -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        """True when ``x`` and ``y`` are currently in the same set."""
        return self.find(x) == self.find(y)

    def _roots_of(self, vertices: np.ndarray) -> np.ndarray:
        """Roots of ``vertices`` via batched pointer jumping, with compression.

        The loop runs once per level of the deepest queried chain, not once
        per vertex; the queried chains are path-compressed afterwards.  Only
        the queried entries are touched, so the cost is proportional to the
        batch, never to the universe size.
        """
        parent = self._parent
        roots = parent[vertices]
        while True:
            jumped = parent[roots]
            # Direct ufunc comparison: np.array_equal costs several Python
            # dispatch layers per round, measurable on the serving hot path.
            if (jumped == roots).all():
                break
            roots = jumped
        parent[vertices] = roots
        return roots

    def union_batch(self, scheduler: Scheduler, edges_u: np.ndarray, edges_v: np.ndarray) -> None:
        """Union every pair ``(edges_u[i], edges_v[i])``, array-at-once.

        Executed as ConnectIt-style rounds of min-hooking with pointer-jumping
        compression of the touched chains: every round hooks the larger root
        of each still-split edge onto the smaller one (writes always point to
        a strictly smaller id, so no cycle can form), which mirrors how the
        concurrent unions of independent edges proceed in the real
        implementation.  The Python loop runs a logarithmic number of rounds,
        never one iteration per edge, and only ever touches the batch's
        endpoints and their chains -- work stays proportional to the batch,
        keeping tiny queries on huge graphs output-sensitive (Theorem 4.3).
        Representatives after a batch are the minimum ids of their components
        (ranks are not consulted; later scalar ``union`` calls remain correct
        since rank is only a balancing heuristic).

        Charged as a concurrent batch: work linear in the number of edges,
        span logarithmic (matching the connectivity bound the query analysis
        relies on).
        """
        edges_u = np.asarray(edges_u, dtype=np.int64)
        edges_v = np.asarray(edges_v, dtype=np.int64)
        if edges_u.shape != edges_v.shape:
            raise ValueError("edge endpoint arrays must have equal length")
        scheduler.charge(int(edges_u.size), ceil_log2(int(edges_u.size)) + 1.0)
        if edges_u.size == 0:
            return
        parent = self._parent
        while True:
            root_u = self._roots_of(edges_u)
            root_v = self._roots_of(edges_v)
            lower = np.minimum(root_u, root_v)
            higher = np.maximum(root_u, root_v)
            split = lower != higher
            if not split.any():
                break
            demoted = higher[split]
            # Conflicting hooks of the same root resolve to the last writer;
            # the next round re-examines every still-split edge, so all
            # requested unions land after at most O(log n) rounds.  The
            # component count is merely invalidated here: counting the
            # distinct demotions would cost a hashing pass per round, and
            # the serving hot path never reads the count between queries.
            parent[demoted] = lower[split]
            self._num_components = None

    def reset_batch(self, *vertex_arrays: np.ndarray) -> None:
        """Restore the given entries to singleton state in O(batch) time.

        The label-recycling serving loop (:mod:`repro.serve`) keeps one forest
        alive across queries instead of paying the O(n) ``arange`` of a fresh
        :class:`UnionFind` per query.  Between queries the forest must be back
        at the identity, which this method restores by writing
        ``parent[v] = v`` (and zeroing the rank) for every passed vertex.

        Contract: the caller must pass a *superset* of every entry written
        since construction or the previous reset.  Batch operations only ever
        write at the vertices they are handed -- :meth:`union_batch` hooks and
        compresses at the edge endpoints (every intermediate root reached is
        itself an endpoint, because chains grow only from batch writes), and
        :meth:`find_batch` compresses at the queried vertices -- so the union
        of all batch arguments since the last reset is always a sufficient
        superset.  Resetting an untouched vertex is a harmless no-op.

        The rank restore is skipped entirely when no scalar :meth:`union`
        ever promoted a rank (batch unions hook by id and never write rank),
        which halves the scatter writes on the recycled serving path.
        """
        parent = self._parent
        rank = self._rank
        restore_rank = self._rank_dirty
        for vertices in vertex_arrays:
            vertices = np.asarray(vertices, dtype=np.int64)
            parent[vertices] = vertices
            if restore_rank:
                rank[vertices] = 0
        # The superset contract covers scalar-union writes too, so after a
        # restoring reset every promoted rank is back at zero.
        self._rank_dirty = False
        self._num_components = len(self)

    def find_batch(self, scheduler: Scheduler, vertices: np.ndarray) -> np.ndarray:
        """Representatives of each vertex in ``vertices`` as an array.

        Batched pointer jumping (see :meth:`_roots_of`): the loop runs once
        per level of the deepest queried chain, not once per vertex.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        scheduler.charge(int(vertices.size), ceil_log2(int(vertices.size)) + 1.0)
        if vertices.size == 0:
            return np.zeros(0, dtype=np.int64)
        return self._roots_of(vertices)

    def component_labels(self, scheduler: Scheduler | None = None) -> np.ndarray:
        """Label array mapping each element to its component representative."""
        n = len(self)
        if scheduler is not None:
            scheduler.charge(n, ceil_log2(n) + 1.0)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        return self._roots_of(np.arange(n, dtype=np.int64))
