"""Parallel runtimes: simulated work-span accounting and real multicore execution.

This package is the substrate on which the paper's parallel algorithms are
expressed, in two complementary halves:

* the *simulated* fork-join runtime -- a
  :class:`~repro.parallel.scheduler.Scheduler` that executes fork-join
  computations sequentially and charges their work and span to a
  :class:`~repro.parallel.metrics.WorkSpanCounter`, together with the
  standard parallel primitives the paper relies on (reduce, filter, scan,
  sorting, hash tables, union-find) -- the paper-facing cost model;
* the *real* execution layer (:mod:`repro.parallel.execute`) -- a
  ``multiprocessing`` worker pool over shared-memory numpy columns that
  shards the construction hot spots for measured wall-clock scaling, with
  output bit-identical to serial execution at any worker count.
"""

from .metrics import CostReport, WorkSpanCounter, ceil_log2, ceil_log2_array
from .scheduler import PAPER_NUM_THREADS, Scheduler, sequential_scheduler
from .primitives import (
    parallel_count,
    parallel_filter,
    parallel_flatten,
    parallel_map_array,
    parallel_max,
    parallel_pack_indices,
    parallel_reduce,
    parallel_scan,
    remove_duplicates,
    segmented_arange,
    segmented_ranges,
    segmented_searchsorted,
)
from .sorting import (
    comparison_sort_permutation,
    integer_sort_permutation,
    pack_segment_keys,
    packed_argsort,
    radix_eligible,
    rationals_to_sort_keys,
    segmented_sort_by_key,
    similarity_rank_keys,
    similarity_sort_keys,
    sort_by_key,
)
from .execute import (
    PARALLEL_FLOOR_ARCS,
    ParallelExecutor,
    executor_for,
    resolve_jobs,
    shared_memory_available,
)
from .hashtable import ParallelHashMap, ParallelHashSet
from .unionfind import UnionFind

__all__ = [
    "CostReport",
    "WorkSpanCounter",
    "ceil_log2",
    "ceil_log2_array",
    "PAPER_NUM_THREADS",
    "Scheduler",
    "sequential_scheduler",
    "parallel_count",
    "parallel_filter",
    "parallel_flatten",
    "parallel_map_array",
    "parallel_max",
    "parallel_pack_indices",
    "parallel_reduce",
    "parallel_scan",
    "remove_duplicates",
    "segmented_arange",
    "segmented_ranges",
    "segmented_searchsorted",
    "comparison_sort_permutation",
    "integer_sort_permutation",
    "pack_segment_keys",
    "packed_argsort",
    "radix_eligible",
    "PARALLEL_FLOOR_ARCS",
    "ParallelExecutor",
    "executor_for",
    "resolve_jobs",
    "shared_memory_available",
    "rationals_to_sort_keys",
    "segmented_sort_by_key",
    "similarity_rank_keys",
    "similarity_sort_keys",
    "sort_by_key",
    "ParallelHashMap",
    "ParallelHashSet",
    "UnionFind",
]
