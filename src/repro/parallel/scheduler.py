"""Fork-join scheduler with work-span accounting.

The :class:`Scheduler` is the entry point of the simulated parallel runtime.
Algorithms written against it look like the pseudocode in the paper --
``parallel_for`` loops, ``fork_join`` of a handful of tasks, nested
parallelism -- and every construct charges work and span to the scheduler's
:class:`~repro.parallel.metrics.WorkSpanCounter`.

Execution itself is sequential (CPython's GIL makes genuine shared-memory
parallelism for this workload impossible without C extensions), but the span
accounting is exact for the executed computation: a ``parallel_for`` charges
the *maximum* span of its iterations plus the depth of the fork tree, not the
sum, and nesting composes correctly because charges of inner primitives are
captured per iteration and re-aggregated.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

from .metrics import WorkSpanCounter, ceil_log2

T = TypeVar("T")
R = TypeVar("R")

#: Number of hyper-threads on the machine used in the paper's evaluation
#: (48 cores with two-way hyper-threading).
PAPER_NUM_THREADS = 96


class Scheduler:
    """Sequentially executed fork-join runtime with exact work-span charges.

    Parameters
    ----------
    num_workers:
        The number of simulated processors; used by :meth:`simulated_time`
        and recorded in reports, it does not change how code executes.
    counter:
        Optional externally owned counter.  By default the scheduler owns a
        fresh :class:`WorkSpanCounter`.
    """

    def __init__(
        self,
        num_workers: int = PAPER_NUM_THREADS,
        counter: WorkSpanCounter | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.counter = counter if counter is not None else WorkSpanCounter()

    # ------------------------------------------------------------------
    # Charging helpers
    # ------------------------------------------------------------------
    def charge(self, work: float, span: float | None = None) -> None:
        """Charge raw work/span directly (for vectorised leaf operations)."""
        self.counter.charge(work, span)

    def charge_parallel(self, work: float, fanout: int) -> None:
        """Charge a flat data-parallel step of ``work`` ops over ``fanout`` tasks."""
        self.counter.charge_parallel(work, fanout)

    # ------------------------------------------------------------------
    # Fork-join constructs
    # ------------------------------------------------------------------
    def parallel_for(
        self,
        n: int,
        body: Callable[[int], None],
        *,
        work_per_iteration: float = 1.0,
    ) -> None:
        """Run ``body(i)`` for ``i in range(n)`` as a parallel loop.

        Work is the sum of the iterations' charges plus ``work_per_iteration``
        bookkeeping per iteration; span is the maximum iteration span plus the
        depth of the balanced fork tree over ``n`` tasks.
        """
        if n <= 0:
            return
        counter = self.counter
        span_before = counter.span
        max_iteration_span = 0.0
        for i in range(n):
            iteration_start = counter.span
            body(i)
            iteration_span = counter.span - iteration_start
            if iteration_span > max_iteration_span:
                max_iteration_span = iteration_span
            counter.span = iteration_start
        counter.work += n * work_per_iteration
        counter.span = span_before + max_iteration_span + ceil_log2(n) + 1.0

    def parallel_map(
        self,
        items: Sequence[T],
        fn: Callable[[T], R],
        *,
        work_per_item: float = 1.0,
    ) -> list[R]:
        """Apply ``fn`` to every item in parallel and return the results in order."""
        results: list[R | None] = [None] * len(items)

        def body(i: int) -> None:
            results[i] = fn(items[i])

        self.parallel_for(len(items), body, work_per_iteration=work_per_item)
        return results  # type: ignore[return-value]

    def fork_join(self, tasks: Iterable[Callable[[], R]]) -> list[R]:
        """Fork the given thunks, run them "concurrently", and join.

        Span is the maximum span of any task plus the fork-join overhead.
        """
        tasks = list(tasks)
        counter = self.counter
        span_before = counter.span
        max_task_span = 0.0
        results: list[R] = []
        for task in tasks:
            task_start = counter.span
            results.append(task())
            task_span = counter.span - task_start
            if task_span > max_task_span:
                max_task_span = task_span
            counter.span = task_start
        counter.work += len(tasks)
        counter.span = span_before + max_task_span + ceil_log2(max(len(tasks), 1)) + 1.0
        return results

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def simulated_time(self, num_workers: int | None = None, **kwargs) -> float:
        """Simulated running time of everything charged so far (seconds)."""
        workers = self.num_workers if num_workers is None else num_workers
        return self.counter.simulated_time(workers, **kwargs)

    def reset(self) -> None:
        """Zero the underlying counter (e.g. between benchmark phases)."""
        self.counter.reset()

    def fresh(self) -> "Scheduler":
        """Return a scheduler with the same worker count and a fresh counter."""
        return Scheduler(self.num_workers)


def sequential_scheduler() -> Scheduler:
    """A scheduler configured with a single worker (sequential baseline)."""
    return Scheduler(num_workers=1)
