"""Parallel sorting primitives: comparison sort, integer sort, rational sort.

The paper exploits the observation (Section 4.1.2) that for unweighted graphs
all similarity scores are rationals with polynomially bounded numerators and
denominators, so they can be sorted with an *integer* sort instead of a
comparison sort, shaving a ``log n`` factor off the work of constructing the
neighbor and core orders.  This module provides both sorts, charged with the
bounds quoted in Section 2.3.2:

* comparison sort (Cole's merge sort): ``O(n log n)`` work, ``O(log n)`` span;
* integer sort (Raman): ``O(n log log n)`` work, ``O(log n / log log n)`` span;
* rational sort: rescale each rational ``a/b`` with ``a, b <= r`` by ``r**2``
  and integer-sort the resulting integers, preserving order.
"""

from __future__ import annotations

import math

import numpy as np

from .metrics import ceil_log2
from .scheduler import Scheduler


def _log_log(n: int) -> float:
    """``log2(log2(n))`` clamped below at 1; used for integer-sort charges."""
    if n <= 4:
        return 1.0
    return max(1.0, math.log2(math.log2(n)))


def comparison_sort_permutation(
    scheduler: Scheduler,
    keys: np.ndarray,
    *,
    descending: bool = False,
) -> np.ndarray:
    """Return the permutation that stably sorts ``keys``.

    Charged as a work-efficient parallel comparison sort: ``O(n log n)`` work
    and ``O(log n)`` span.
    """
    keys = np.asarray(keys)
    n = int(keys.shape[0])
    scheduler.charge(n * (ceil_log2(n) + 1.0), 2 * ceil_log2(n) + 1.0)
    if descending:
        # Negate for stable descending order when keys are numeric; fall back
        # to reversing the stable ascending order otherwise.
        if np.issubdtype(keys.dtype, np.number):
            return np.argsort(-keys, kind="stable")
        return np.argsort(keys, kind="stable")[::-1]
    return np.argsort(keys, kind="stable")


def integer_sort_permutation(
    scheduler: Scheduler,
    keys: np.ndarray,
    *,
    descending: bool = False,
) -> np.ndarray:
    """Return the permutation that stably sorts non-negative integer ``keys``.

    Charged with Raman's bound: ``O(n log log n)`` work and
    ``O(log n / log log n)`` span.  Raises ``ValueError`` on negative keys.
    """
    keys = np.asarray(keys)
    if keys.size and np.issubdtype(keys.dtype, np.signedinteger) and int(keys.min()) < 0:
        raise ValueError("integer sort requires non-negative keys")
    n = int(keys.shape[0])
    loglog = _log_log(n)
    scheduler.charge(n * loglog, (ceil_log2(n) / loglog) + 1.0)
    if descending:
        if keys.size == 0:
            return np.zeros(0, dtype=np.int64)
        return np.argsort(keys.max() - keys, kind="stable")
    return np.argsort(keys, kind="stable")


def rationals_to_sort_keys(
    numerators: np.ndarray,
    denominators: np.ndarray,
    bound: float,
) -> np.ndarray:
    """Map rationals ``numerators/denominators`` to integers preserving order.

    Two distinct rationals whose numerator and denominator are bounded by
    ``bound`` differ by at least ``1 / bound**2``, so multiplying by
    ``bound**2`` and rounding down yields integers in the same order
    (Section 2.3.2 of the paper).
    """
    numerators = np.asarray(numerators, dtype=np.float64)
    denominators = np.asarray(denominators, dtype=np.float64)
    if numerators.shape != denominators.shape:
        raise ValueError("numerators and denominators must have the same shape")
    if np.any(denominators <= 0):
        raise ValueError("denominators must be positive")
    scale = float(bound) ** 2
    return np.floor(numerators / denominators * scale).astype(np.int64)


def similarity_sort_keys(similarities: np.ndarray, resolution: int = 1 << 20) -> np.ndarray:
    """Quantise similarity scores in ``[0, 1]`` to integer sort keys.

    Similarity scores produced by the exact similarity engine are rationals
    (Jaccard) or square roots of rationals (cosine); quantising at
    ``resolution`` steps reproduces the paper's "sort rationals as integers"
    trick with a fixed precision far finer than any similarity threshold a
    user would pass.

    .. warning:: Quantisation merges raw float values that fall in the same
       bucket, so an order built from these keys is only non-increasing *up
       to the bucket width*.  The index orders are built with
       :func:`similarity_rank_keys` instead, whose keys preserve the exact
       float order -- a doubling search against the raw scores then has a
       well-defined boundary regardless of probe sequence.
    """
    similarities = np.asarray(similarities, dtype=np.float64)
    clipped = np.clip(similarities, 0.0, 1.0)
    return np.round(clipped * resolution).astype(np.int64)


def similarity_rank_keys(similarities: np.ndarray) -> np.ndarray:
    """Dense integer ranks of similarity scores, preserving exact float order.

    The modern rendering of the paper's "sort rationals as integers" trick:
    the distinct score values (at most one per edge) are ranked ``0 .. d-1``
    in ascending order and every score is replaced by its rank.  Sorting by
    rank is *exactly* sorting by raw value -- no quantisation bucket ever
    merges two distinct floats -- while the key domain stays dense enough for
    the packed single-array integer sort of
    :func:`segmented_sort_by_key`.  This is what keeps the stored neighbor
    and core orders strictly non-increasing in the raw scores, which in turn
    makes every prefix search (scalar doubling, batched simultaneous, single
    query or planned sweep) land on the same boundary.
    """
    similarities = np.asarray(similarities, dtype=np.float64)
    _, inverse = np.unique(similarities, return_inverse=True)
    return inverse.astype(np.int64)


#: Execution strategies for the packed segmented permutation (see
#: :func:`packed_argsort`).  ``"auto"`` picks by the measured crossover.
SORT_STRATEGIES = ("auto", "argsort", "radix")

#: Digit width of one radix pass.  numpy's ``kind="stable"`` argsort runs an
#: O(n) radix sort for integer dtypes of at most 16 bits, so chaining stable
#: argsorts over 16-bit digits yields an O(passes * n) sort of arbitrarily
#: wide keys.
RADIX_DIGIT_BITS = 16

#: ``"auto"`` uses the radix chain only when the packed universe fits in this
#: many digit passes.  Each pass costs a whole-array digit extraction, an
#: O(n) radix argsort and a permutation gather; at three or more passes the
#: packed int64 timsort wins back (measured: 2-pass radix beats it up to
#: ~2.5x on hub-heavy segments, 3 passes loses ~0.9x).
RADIX_MAX_PASSES = 2

#: ``"auto"`` requires the longest segment to reach this many entries.
#: Timsort exploits the segment-run structure of the packed codes (segments
#: are contiguous ascending blocks): on short uniform segments its galloping
#: merges beat the radix chain (measured crossover near max-segment ~1024;
#: see ``BENCH_construction.json``'s order-build microbenchmark per rung).
RADIX_MIN_MAX_SEGMENT = 1024

#: Below this total the permutation is microseconds either way; skip the
#: digit-array bookkeeping and keep the single argsort call.
RADIX_MIN_TOTAL = 4096


def radix_passes(universe: int) -> int:
    """Number of 16-bit digit passes covering packed codes in ``[0, universe)``."""
    if universe <= 1:
        return 1
    bits = int(universe - 1).bit_length()
    return -(-bits // RADIX_DIGIT_BITS)


def radix_eligible(total: int, universe: int, max_segment: int) -> bool:
    """The measured ``"auto"`` crossover of :func:`packed_argsort`, exposed.

    One definition shared by the sort itself and the benchmarks that report
    on it (``benchmarks/bench_construction.py``), so the recorded
    ``auto_strategy`` can never drift from what the build actually runs.
    """
    return (
        total >= RADIX_MIN_TOTAL
        and max_segment >= RADIX_MIN_MAX_SEGMENT
        and radix_passes(universe) <= RADIX_MAX_PASSES
    )


def pack_segment_keys(
    segment_offsets: np.ndarray,
    keys: np.ndarray,
    *,
    descending: bool = True,
) -> tuple[np.ndarray, int, int] | None:
    """Single-int64 codes whose ascending stable order is the segmented order.

    The packing behind :func:`segmented_sort_by_key`'s fast path: code =
    ``segment_id * key_span + shifted_key``, with keys negated first when
    ``descending``.  Returns ``(packed, universe, max_segment)`` -- the
    codes, their exclusive upper bound, and the longest segment length (the
    two inputs of the :func:`radix_eligible` crossover) -- or ``None`` when
    the packed universe would overflow the int64 headroom, in which case
    callers fall back to a two-array ``lexsort``.  Benchmarks measure the
    sort strategies on exactly these codes.
    """
    segment_offsets = np.asarray(segment_offsets, dtype=np.int64)
    keys = np.asarray(keys)
    lengths = np.diff(segment_offsets)
    num_segments = int(segment_offsets.shape[0] - 1)
    sort_keys = -keys if descending else keys
    if sort_keys.size == 0:
        return np.zeros(0, dtype=np.int64), 1, 0
    key_low = int(sort_keys.min())
    key_span = int(sort_keys.max()) - key_low + 1
    universe = num_segments * key_span
    if universe > (1 << 62):
        return None
    segment_ids = np.repeat(np.arange(num_segments, dtype=np.int64), lengths)
    packed = segment_ids * np.int64(key_span) + (sort_keys - np.int64(key_low))
    return packed, universe, int(lengths.max(initial=0))


def _radix_argsort(packed: np.ndarray, universe: int) -> np.ndarray:
    """Stable ascending permutation of ``packed`` via LSD 16-bit radix passes.

    Equivalent to ``np.argsort(packed, kind="stable")`` for non-negative
    codes below ``universe`` -- a stable sort permutation is uniquely
    determined by the key sequence, so the two strategies are bit-identical
    by construction (property-tested).  Each pass stable-sorts one 16-bit
    digit, low to high; numpy executes those argsorts with its O(n) integer
    radix sort.
    """
    mask = np.int64((1 << RADIX_DIGIT_BITS) - 1)
    perm: np.ndarray | None = None
    for digit_pass in range(radix_passes(universe)):
        shift = np.int64(digit_pass * RADIX_DIGIT_BITS)
        digit = ((packed >> shift) & mask).astype(np.uint16)
        if perm is None:
            perm = np.argsort(digit, kind="stable")
        else:
            perm = perm[np.argsort(digit[perm], kind="stable")]
    return perm


def packed_argsort(
    packed: np.ndarray,
    *,
    universe: int,
    max_segment: int,
    strategy: str = "auto",
) -> np.ndarray:
    """Stable ascending permutation of packed ``(segment, key)`` codes.

    ``packed`` is the single-array encoding ``segment_id * key_span + key``
    produced by :func:`segmented_sort_by_key`: non-negative, below
    ``universe``, with segment blocks contiguous and ascending in input
    order.  Two interchangeable strategies compute the permutation --
    ``"argsort"`` (one stable int64 argsort; timsort) and ``"radix"`` (the
    paper's Section 4.1.2 bounded-integer observation rendered as chained
    16-bit counting passes, O(n) per pass) -- and ``"auto"`` picks by the
    measured crossover: radix wins when segments are long (hub-heavy degree
    distributions, the per-mu core-order lists) and the packed universe
    fits :data:`RADIX_MAX_PASSES` digit passes; timsort's galloping wins on
    short uniform segments.  Both strategies return bit-identical
    permutations (stable-sort uniqueness), so the choice is purely a
    wall-clock matter; ``BENCH_construction.json`` tracks it per rung.
    """
    if strategy not in SORT_STRATEGIES:
        raise ValueError(
            f"unknown sort strategy {strategy!r}; expected one of {SORT_STRATEGIES}"
        )
    if strategy == "auto":
        strategy = (
            "radix"
            if radix_eligible(int(packed.shape[0]), universe, max_segment)
            else "argsort"
        )
    if strategy == "radix":
        return _radix_argsort(packed, universe)
    return np.argsort(packed, kind="stable")


def sort_by_key(
    scheduler: Scheduler,
    values: np.ndarray,
    keys: np.ndarray,
    *,
    descending: bool = False,
    use_integer_sort: bool = False,
) -> np.ndarray:
    """Sort ``values`` by ``keys`` and return the reordered values.

    Dispatches to the integer sort when ``use_integer_sort`` is set (keys must
    then be non-negative integers), otherwise to the comparison sort.
    """
    values = np.asarray(values)
    keys = np.asarray(keys)
    if values.shape[0] != keys.shape[0]:
        raise ValueError("values and keys must have equal length")
    if use_integer_sort:
        order = integer_sort_permutation(scheduler, keys, descending=descending)
    else:
        order = comparison_sort_permutation(scheduler, keys, descending=descending)
    return values[order]


def segmented_sort_by_key(
    scheduler: Scheduler,
    segment_offsets: np.ndarray,
    values: np.ndarray,
    keys: np.ndarray,
    *,
    descending: bool = True,
    use_integer_sort: bool = True,
    sort_strategy: str = "auto",
    executor=None,
) -> np.ndarray:
    """Sort each segment of a CSR-style array independently by its keys.

    ``segment_offsets`` is a length ``s + 1`` array of offsets delimiting the
    segments of ``values``/``keys`` (exactly a CSR index pointer).  The paper
    implements this as a single global sort on (segment id, key) pairs so that
    an integer sort's bounds apply; we charge accordingly and perform the sort
    with a single stable ``lexsort``-style pass.

    When the integer keys pack into one int64 code per entry, the permutation
    runs through :func:`packed_argsort`, whose ``sort_strategy`` selects
    between the stable argsort and the radix digit chain (``"auto"`` picks by
    the measured crossover).  ``executor`` -- a
    :class:`~repro.parallel.execute.ParallelExecutor` -- shards the packed
    permutation across real worker processes along segment boundaries; the
    sharded result is bit-identical to the serial one because packed codes of
    earlier segments are strictly smaller than those of later segments, so
    the global stable sort is exactly the concatenation of the per-shard
    stable sorts.

    Returns the values reordered within each segment; segment boundaries are
    unchanged.
    """
    segment_offsets = np.asarray(segment_offsets, dtype=np.int64)
    values = np.asarray(values)
    keys = np.asarray(keys)
    if values.shape[0] != keys.shape[0]:
        raise ValueError("values and keys must have equal length")
    total = int(values.shape[0])
    if segment_offsets.size == 0 or segment_offsets[-1] != total:
        raise ValueError("segment_offsets must end at len(values)")

    num_segments = int(segment_offsets.shape[0] - 1)

    if use_integer_sort:
        loglog = _log_log(max(total, 2))
        scheduler.charge(total * loglog, (ceil_log2(total) / loglog) + 1.0)
    else:
        scheduler.charge(total * (ceil_log2(total) + 1.0), 2 * ceil_log2(total) + 1.0)

    if total == 0:
        return values.copy()

    # Stable sort by (segment, key): primary key is the segment id so segments
    # stay contiguous; the secondary key orders within the segment.  When the
    # key range allows it, the pair is packed into a single int64 so one
    # stable permutation pass replaces the two-array lexsort (~2x faster on
    # the hot index-construction path); ties resolve identically because
    # equal packed keys are exactly equal (segment, key) pairs and every
    # strategy is stable.
    if np.issubdtype(keys.dtype, np.integer):
        packing = pack_segment_keys(segment_offsets, keys, descending=descending)
        if packing is not None:
            packed, universe, max_segment = packing
            if executor is not None:
                order = executor.segmented_argsort(
                    packed,
                    segment_offsets,
                    universe=universe,
                    max_segment=max_segment,
                    strategy=sort_strategy,
                )
            else:
                order = packed_argsort(
                    packed,
                    universe=universe,
                    max_segment=max_segment,
                    strategy=sort_strategy,
                )
            return values[order]
    sort_keys = -keys if descending else keys
    lengths = np.diff(segment_offsets)
    segment_ids = np.repeat(np.arange(num_segments, dtype=np.int64), lengths)
    order = np.lexsort((sort_keys, segment_ids))
    return values[order]
