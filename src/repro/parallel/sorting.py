"""Parallel sorting primitives: comparison sort, integer sort, rational sort.

The paper exploits the observation (Section 4.1.2) that for unweighted graphs
all similarity scores are rationals with polynomially bounded numerators and
denominators, so they can be sorted with an *integer* sort instead of a
comparison sort, shaving a ``log n`` factor off the work of constructing the
neighbor and core orders.  This module provides both sorts, charged with the
bounds quoted in Section 2.3.2:

* comparison sort (Cole's merge sort): ``O(n log n)`` work, ``O(log n)`` span;
* integer sort (Raman): ``O(n log log n)`` work, ``O(log n / log log n)`` span;
* rational sort: rescale each rational ``a/b`` with ``a, b <= r`` by ``r**2``
  and integer-sort the resulting integers, preserving order.
"""

from __future__ import annotations

import math

import numpy as np

from .metrics import ceil_log2
from .scheduler import Scheduler


def _log_log(n: int) -> float:
    """``log2(log2(n))`` clamped below at 1; used for integer-sort charges."""
    if n <= 4:
        return 1.0
    return max(1.0, math.log2(math.log2(n)))


def comparison_sort_permutation(
    scheduler: Scheduler,
    keys: np.ndarray,
    *,
    descending: bool = False,
) -> np.ndarray:
    """Return the permutation that stably sorts ``keys``.

    Charged as a work-efficient parallel comparison sort: ``O(n log n)`` work
    and ``O(log n)`` span.
    """
    keys = np.asarray(keys)
    n = int(keys.shape[0])
    scheduler.charge(n * (ceil_log2(n) + 1.0), 2 * ceil_log2(n) + 1.0)
    if descending:
        # Negate for stable descending order when keys are numeric; fall back
        # to reversing the stable ascending order otherwise.
        if np.issubdtype(keys.dtype, np.number):
            return np.argsort(-keys, kind="stable")
        return np.argsort(keys, kind="stable")[::-1]
    return np.argsort(keys, kind="stable")


def integer_sort_permutation(
    scheduler: Scheduler,
    keys: np.ndarray,
    *,
    descending: bool = False,
) -> np.ndarray:
    """Return the permutation that stably sorts non-negative integer ``keys``.

    Charged with Raman's bound: ``O(n log log n)`` work and
    ``O(log n / log log n)`` span.  Raises ``ValueError`` on negative keys.
    """
    keys = np.asarray(keys)
    if keys.size and np.issubdtype(keys.dtype, np.signedinteger) and int(keys.min()) < 0:
        raise ValueError("integer sort requires non-negative keys")
    n = int(keys.shape[0])
    loglog = _log_log(n)
    scheduler.charge(n * loglog, (ceil_log2(n) / loglog) + 1.0)
    if descending:
        if keys.size == 0:
            return np.zeros(0, dtype=np.int64)
        return np.argsort(keys.max() - keys, kind="stable")
    return np.argsort(keys, kind="stable")


def rationals_to_sort_keys(
    numerators: np.ndarray,
    denominators: np.ndarray,
    bound: float,
) -> np.ndarray:
    """Map rationals ``numerators/denominators`` to integers preserving order.

    Two distinct rationals whose numerator and denominator are bounded by
    ``bound`` differ by at least ``1 / bound**2``, so multiplying by
    ``bound**2`` and rounding down yields integers in the same order
    (Section 2.3.2 of the paper).
    """
    numerators = np.asarray(numerators, dtype=np.float64)
    denominators = np.asarray(denominators, dtype=np.float64)
    if numerators.shape != denominators.shape:
        raise ValueError("numerators and denominators must have the same shape")
    if np.any(denominators <= 0):
        raise ValueError("denominators must be positive")
    scale = float(bound) ** 2
    return np.floor(numerators / denominators * scale).astype(np.int64)


def similarity_sort_keys(similarities: np.ndarray, resolution: int = 1 << 20) -> np.ndarray:
    """Quantise similarity scores in ``[0, 1]`` to integer sort keys.

    Similarity scores produced by the exact similarity engine are rationals
    (Jaccard) or square roots of rationals (cosine); quantising at
    ``resolution`` steps reproduces the paper's "sort rationals as integers"
    trick with a fixed precision far finer than any similarity threshold a
    user would pass.

    .. warning:: Quantisation merges raw float values that fall in the same
       bucket, so an order built from these keys is only non-increasing *up
       to the bucket width*.  The index orders are built with
       :func:`similarity_rank_keys` instead, whose keys preserve the exact
       float order -- a doubling search against the raw scores then has a
       well-defined boundary regardless of probe sequence.
    """
    similarities = np.asarray(similarities, dtype=np.float64)
    clipped = np.clip(similarities, 0.0, 1.0)
    return np.round(clipped * resolution).astype(np.int64)


def similarity_rank_keys(similarities: np.ndarray) -> np.ndarray:
    """Dense integer ranks of similarity scores, preserving exact float order.

    The modern rendering of the paper's "sort rationals as integers" trick:
    the distinct score values (at most one per edge) are ranked ``0 .. d-1``
    in ascending order and every score is replaced by its rank.  Sorting by
    rank is *exactly* sorting by raw value -- no quantisation bucket ever
    merges two distinct floats -- while the key domain stays dense enough for
    the packed single-array integer sort of
    :func:`segmented_sort_by_key`.  This is what keeps the stored neighbor
    and core orders strictly non-increasing in the raw scores, which in turn
    makes every prefix search (scalar doubling, batched simultaneous, single
    query or planned sweep) land on the same boundary.
    """
    similarities = np.asarray(similarities, dtype=np.float64)
    _, inverse = np.unique(similarities, return_inverse=True)
    return inverse.astype(np.int64)


def sort_by_key(
    scheduler: Scheduler,
    values: np.ndarray,
    keys: np.ndarray,
    *,
    descending: bool = False,
    use_integer_sort: bool = False,
) -> np.ndarray:
    """Sort ``values`` by ``keys`` and return the reordered values.

    Dispatches to the integer sort when ``use_integer_sort`` is set (keys must
    then be non-negative integers), otherwise to the comparison sort.
    """
    values = np.asarray(values)
    keys = np.asarray(keys)
    if values.shape[0] != keys.shape[0]:
        raise ValueError("values and keys must have equal length")
    if use_integer_sort:
        order = integer_sort_permutation(scheduler, keys, descending=descending)
    else:
        order = comparison_sort_permutation(scheduler, keys, descending=descending)
    return values[order]


def segmented_sort_by_key(
    scheduler: Scheduler,
    segment_offsets: np.ndarray,
    values: np.ndarray,
    keys: np.ndarray,
    *,
    descending: bool = True,
    use_integer_sort: bool = True,
) -> np.ndarray:
    """Sort each segment of a CSR-style array independently by its keys.

    ``segment_offsets`` is a length ``s + 1`` array of offsets delimiting the
    segments of ``values``/``keys`` (exactly a CSR index pointer).  The paper
    implements this as a single global sort on (segment id, key) pairs so that
    an integer sort's bounds apply; we charge accordingly and perform the sort
    with a single stable ``lexsort``-style pass.

    Returns the values reordered within each segment; segment boundaries are
    unchanged.
    """
    segment_offsets = np.asarray(segment_offsets, dtype=np.int64)
    values = np.asarray(values)
    keys = np.asarray(keys)
    if values.shape[0] != keys.shape[0]:
        raise ValueError("values and keys must have equal length")
    total = int(values.shape[0])
    if segment_offsets.size == 0 or segment_offsets[-1] != total:
        raise ValueError("segment_offsets must end at len(values)")

    num_segments = int(segment_offsets.shape[0] - 1)
    lengths = np.diff(segment_offsets)
    segment_ids = np.repeat(np.arange(num_segments, dtype=np.int64), lengths)

    if use_integer_sort:
        loglog = _log_log(max(total, 2))
        scheduler.charge(total * loglog, (ceil_log2(total) / loglog) + 1.0)
    else:
        scheduler.charge(total * (ceil_log2(total) + 1.0), 2 * ceil_log2(total) + 1.0)

    if total == 0:
        return values.copy()

    sort_keys = -keys if descending else keys
    # Stable sort by (segment, key): primary key is the segment id so segments
    # stay contiguous; the secondary key orders within the segment.  When the
    # key range allows it, the pair is packed into a single int64 so one
    # stable argsort replaces the two-array lexsort (~2x faster on the hot
    # index-construction path); ties resolve identically because equal packed
    # keys are exactly equal (segment, key) pairs and both sorts are stable.
    if np.issubdtype(sort_keys.dtype, np.integer):
        key_low = int(sort_keys.min())
        key_span = int(sort_keys.max()) - key_low + 1
        if num_segments * key_span <= (1 << 62):
            packed = segment_ids * np.int64(key_span) + (sort_keys - np.int64(key_low))
            return values[np.argsort(packed, kind="stable")]
    order = np.lexsort((sort_keys, segment_ids))
    return values[order]
