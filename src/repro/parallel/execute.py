"""Real multicore execution: worker processes over shared-memory columns.

Everything else in :mod:`repro.parallel` is the *simulated* runtime: the
:class:`~repro.parallel.scheduler.Scheduler` executes sequentially and
charges work/span so the paper's asymptotic claims are testable.  This
module is the other half the paper actually ran on 96 hyper-threads: a
``multiprocessing`` pool whose workers operate directly on
``multiprocessing.shared_memory``-backed numpy columns -- the arc arrays are
mapped, never pickled -- so index construction uses the machine's cores for
wall-clock time, not just for accounting.

Two construction stages shard:

* **the edge-similarity pass** (:meth:`ParallelExecutor.sharded_numerators`):
  the oriented arcs split into contiguous ranges balanced by candidate-pair
  counts; each worker accumulates its range's triangle contributions into a
  private output column and the master sums the columns in shard order.
  Restricted to unweighted graphs, where every contribution is a bounded
  integer and float64 addition is exact in any order -- which is what makes
  the merged result **bit-identical** to the serial accumulation.  Weighted
  graphs keep the serial similarity pass (float summation order would
  differ) while their order builds still shard.
* **the segmented order sorts** (:meth:`ParallelExecutor.segmented_argsort`):
  the packed ``(segment, key)`` codes split along segment boundaries; each
  worker computes the stable permutation of its slice.  Packed codes of
  earlier segments are strictly smaller than those of later segments, so the
  concatenation of per-shard stable sorts *is* the global stable sort --
  bit-identical by construction, for every strategy of
  :func:`~repro.parallel.sorting.packed_argsort`.

The determinism/merge contract, in one line: **shard boundaries are pure
functions of the input, every worker's output is deterministic, and merges
are exact (integer sums / disjoint writes) -- so the built index is
bit-identical to the serial build for every stored column, at any worker
count.**  Property tests in ``tests/parallel/test_execute.py`` enforce it.

Degradation is graceful and loud exactly once: ``jobs > 1`` falls back to
serial execution -- with a single :class:`RuntimeWarning` per reason -- when
``multiprocessing.shared_memory`` is unavailable on the platform or the
graph sits below :data:`PARALLEL_FLOOR_ARCS`, the measured size floor under
which pool startup dominates any possible win (recorded alongside the
scaling numbers in ``BENCH_construction.json``).

Dispatch is *supervised* (:mod:`repro.parallel.supervise`): every task runs
under a per-task timeout with bounded exponential-backoff retry, so a dying
or wedged worker costs one timeout, not a hung build -- and when the pool is
beyond saving, the executor tears it down, releases every shared-memory
segment (guaranteed by ``finally`` on all error paths; see
:func:`active_shared_segments` for the leak check the tests run), and
finishes the stage on the bit-identical serial path with a single
:class:`~repro.parallel.supervise.DegradedExecutionWarning`.  Worker deaths
are injectable deterministically through the ``parallel.worker.task`` fault
point (:mod:`repro.testing.faults`); the chaos suite kills workers
mid-build and asserts the index still matches the serial build bit for bit.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

try:  # pragma: no cover - import guard exercised via monkeypatching
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

from .. import obs
from ..testing.faults import fault_point
from .sorting import packed_argsort
from .supervise import (
    DegradedExecutionWarning,
    PoolBroken,
    SupervisionPolicy,
    TaskFailed,
    run_supervised,
)

__all__ = [
    "PARALLEL_FLOOR_ARCS",
    "ParallelExecutor",
    "active_shared_segments",
    "executor_for",
    "resolve_jobs",
    "shared_memory_available",
    "visible_cpu_count",
]

#: Arc-count floor under which ``jobs > 1`` silently stays serial (after one
#: warning): forking the pool plus exporting/attaching the shared columns
#: costs ~25-80 ms (measured, ``BENCH_construction.json`` records the pool
#: startup of the benchmarking machine), which a serial build below this
#: size finishes outright.
PARALLEL_FLOOR_ARCS = 65_536

#: Upper bound on similarity-pass shards regardless of ``jobs``.  Every
#: shard owns a private ``num_edges`` float64 accumulation column, so the
#: slab grows linearly with the shard count -- at 96 workers on an
#: orkut-scale graph that would be tens of gigabytes of /dev/shm for a pass
#: that is memory-bandwidth bound long before then.  Sixteen concurrent
#: accumulators keep the slab at 16 columns while the order sorts (whose
#: shards are slices, not columns) still use every worker.
MAX_NUMERATOR_SHARDS = 16

#: Reasons already warned about (one warning per reason per process).
_warned: set[str] = set()


def shared_memory_available() -> bool:
    """True when ``multiprocessing.shared_memory`` is importable."""
    return _shared_memory is not None


def visible_cpu_count() -> int:
    """Cores this process may actually schedule on.

    ``os.cpu_count()`` reports the host's cores and ignores CPU affinity
    and cgroup pinning; inside a container limited to 2 of 64 cores it
    would fork 64 workers that timeshare 2.  The affinity mask is the
    honest count where the platform exposes it.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def resolve_jobs(jobs: int) -> int:
    """Resolve the public ``jobs`` knob: ``0`` means every visible core."""
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = all cores), got {jobs}")
    if jobs == 0:
        return visible_cpu_count()
    return jobs


def _warn_once(key: str, message: str) -> None:
    # The warning fires once per process; the counter counts every trigger,
    # so post-hoc inspection sees how often a fallback happened, not just
    # that it ever did.
    obs.counter(f"parallel.fallback.{key.replace('-', '_')}_total").inc()
    if key not in _warned:
        _warned.add(key)
        warnings.warn(message, RuntimeWarning, stacklevel=3)


def executor_for(jobs: int, *, num_arcs: int, policy: SupervisionPolicy | None = None):
    """Context manager yielding a :class:`ParallelExecutor`, or ``None``.

    The serial outcomes -- ``jobs`` resolving to 1, shared memory being
    unavailable, or the graph sitting below :data:`PARALLEL_FLOOR_ARCS` --
    yield ``None`` so callers take the *identical* serial code path; the
    latter two warn once per process.
    """
    jobs = resolve_jobs(jobs)
    if jobs <= 1:
        return nullcontext(None)
    if not shared_memory_available():  # pragma: no cover - platform dependent
        _warn_once(
            "shared-memory",
            "multiprocessing.shared_memory is unavailable on this platform; "
            f"jobs={jobs} falls back to serial execution",
        )
        return nullcontext(None)
    if num_arcs < PARALLEL_FLOOR_ARCS:
        _warn_once(
            "size-floor",
            f"graph below the parallel size floor ({PARALLEL_FLOOR_ARCS} arcs, "
            "where worker-pool startup dominates any speedup); "
            f"jobs={jobs} falls back to serial execution",
        )
        return nullcontext(None)
    return ParallelExecutor(jobs, policy=policy)


# ----------------------------------------------------------------------
# Shared-memory column plumbing
# ----------------------------------------------------------------------
#: Names of shared-memory segments this process created and has not yet
#: released.  The leak check in the tests forces dispatch failures and then
#: asserts this is empty -- /dev/shm is a machine-wide resource, and a
#: leaked orkut-sized column outlives the process that leaked it.
_live_segments: set[str] = set()


def active_shared_segments() -> int:
    """Shared-memory segments currently owned (created, unreleased) here."""
    return len(_live_segments)


@dataclass(frozen=True)
class SharedColumn:
    """Name/shape/dtype triple a worker needs to map one shared column."""

    shm_name: str
    shape: tuple
    dtype: str


def _attach(spec: SharedColumn):
    """Worker-side map of a shared column; caller must close the handle."""
    handle = _shared_memory.SharedMemory(name=spec.shm_name)
    array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=handle.buf)
    return handle, array


class _ColumnSet:
    """Master-side owner of the shared blocks of one pool dispatch."""

    def __init__(self) -> None:
        self._handles: list = []

    def share(self, array: np.ndarray) -> SharedColumn:
        """Copy ``array`` into a fresh shared block and return its spec."""
        array = np.ascontiguousarray(array)
        handle = _shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
        self._handles.append(handle)
        _live_segments.add(handle.name)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=handle.buf)
        view[...] = array
        return SharedColumn(handle.name, tuple(array.shape), array.dtype.str)

    def allocate(self, shape: tuple, dtype) -> tuple[SharedColumn, np.ndarray]:
        """Zero-filled shared output block plus the master's view of it."""
        dtype = np.dtype(dtype)
        size = max(int(np.prod(shape)) * dtype.itemsize, 1)
        handle = _shared_memory.SharedMemory(create=True, size=size)
        self._handles.append(handle)
        _live_segments.add(handle.name)
        view = np.ndarray(shape, dtype=dtype, buffer=handle.buf)
        view[...] = 0
        return SharedColumn(handle.name, tuple(shape), dtype.str), view

    def release(self) -> None:
        """Release every block, tolerating per-handle failure.

        One close/unlink raising (a segment a crashed worker already
        tore down, say) must not strand the remaining segments -- this
        runs in ``finally`` on every dispatch path, success or not, and
        the accounting in :data:`_live_segments` only drops a name once
        its unlink was attempted.
        """
        for handle in self._handles:
            try:
                handle.close()
            except Exception:  # pragma: no cover - platform specific
                pass
            try:
                handle.unlink()
            except Exception:  # pragma: no cover - already gone
                pass
            _live_segments.discard(handle.name)
        self._handles.clear()


# ----------------------------------------------------------------------
# Worker entry points (top-level so every start method can pickle them)
# ----------------------------------------------------------------------
def _sort_worker(
    task_index: int,
    packed_spec: SharedColumn,
    out_spec: SharedColumn,
    lo: int,
    hi: int,
    universe: int,
    max_segment: int,
    strategy: str,
) -> None:
    """Stable permutation of ``packed[lo:hi]`` written to ``out[lo:hi]``.

    Shards write disjoint slices of one shared output column, so no
    synchronisation is needed; positions are absolute (offset by ``lo``).
    Safe to re-run after a worker death: the slice is fully overwritten
    with a pure function of the (read-only) input, so a retry -- even one
    racing a straggler that was slow rather than dead -- produces the same
    bytes.
    """
    fault_point("parallel.worker.task", task=task_index)
    handles = []
    try:
        handle, packed = _attach(packed_spec)
        handles.append(handle)
        handle, out = _attach(out_spec)
        handles.append(handle)
        out[lo:hi] = packed_argsort(
            packed[lo:hi],
            universe=universe,
            max_segment=max_segment,
            strategy=strategy,
        )
        out[lo:hi] += lo
    finally:
        for handle in handles:
            handle.close()


def _numerator_worker(
    task_index: int,
    column_specs: dict,
    out_spec: SharedColumn,
    out_row: int,
    num_vertices: int,
    arc_lo: int,
    arc_hi: int,
    chunk_pairs: int,
    probe: str,
) -> None:
    """Triangle contributions of oriented arcs ``[arc_lo, arc_hi)``.

    Accumulates into row ``out_row`` of the shared output slab through the
    exact chunk loop of the serial batch engine
    (:func:`repro.similarity.batch.accumulate_oriented_contributions`), so
    every worker's partial column is the integer-valued array the serial
    pass would have produced for the same arc range.

    Accumulation is *not* idempotent, so a retry of a task whose first
    attempt may have partially run is never aimed at the same row: the
    supervisor's ``respawn`` hook hands each retry a fresh zeroed block
    and the merge reads only the block of the attempt that completed.
    """
    from ..similarity.batch import accumulate_oriented_contributions

    fault_point("parallel.worker.task", task=task_index)
    handles = []
    try:
        columns = {}
        for name, spec in column_specs.items():
            handle, array = _attach(spec)
            handles.append(handle)
            columns[name] = array
        handle, out = _attach(out_spec)
        handles.append(handle)
        accumulate_oriented_contributions(
            out[out_row],
            (
                columns["indptr"],
                columns["targets"],
                columns["edge_ids"],
                columns["weights"],
            ),
            columns["sources"],
            columns.get("comp"),
            num_vertices,
            arc_lo,
            arc_hi,
            chunk_pairs=chunk_pairs,
            probe=probe,
        )
    finally:
        for handle in handles:
            handle.close()


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class ParallelExecutor:
    """A worker pool that executes build stages over shared numpy columns.

    One executor spans one construction (or one dynamic-update re-sort):
    :meth:`~repro.core.index.ScanIndex.build` opens it, threads it through
    the similarity engine and both order builds, and closes it -- the pool
    forks once, every stage's columns are exported to shared memory for the
    duration of its dispatch, and nothing is pickled but shard bounds.

    Use as a context manager (or rely on :func:`executor_for`, which also
    applies the serial-fallback gates)::

        with ParallelExecutor(jobs=4) as executor:
            order = executor.segmented_argsort(packed, offsets, ...)

    Dispatches are supervised (per-task timeout, bounded retry with
    backoff; see :mod:`repro.parallel.supervise`).  When supervision gives
    up -- retries exhausted, pool broken -- the executor marks itself
    degraded, tears the pool down, warns once with a
    :class:`~repro.parallel.supervise.DegradedExecutionWarning`, and every
    stage (the failed one included) completes on the bit-identical serial
    path.  Shared-memory segments are released in ``finally`` on all
    paths; :func:`active_shared_segments` must read zero afterwards.
    """

    def __init__(self, jobs: int, *, policy: SupervisionPolicy | None = None) -> None:
        jobs = resolve_jobs(jobs)
        if jobs < 2:
            raise ValueError(f"ParallelExecutor needs at least 2 jobs, got {jobs}")
        if not shared_memory_available():  # pragma: no cover - platform dependent
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self.jobs = jobs
        self.policy = policy if policy is not None else SupervisionPolicy()
        start_methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in start_methods else start_methods[0]
        self._context = multiprocessing.get_context(method)
        self._pool = None
        self._degraded = False
        # A pool that ever lost a task attempt (worker dead past its
        # timeout) holds a permanently stuck entry in its result cache;
        # close()+join() on it would block forever, so teardown must
        # terminate() it even though every dispatch ultimately succeeded.
        self._tainted = False

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def degraded(self) -> bool:
        """True once supervision has abandoned the pool for this executor."""
        return self._degraded

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._context.Pool(self.jobs)
        return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent).

        A healthy pool is drained cleanly -- ``close()`` then ``join()``,
        so workers finish and exit rather than being killed mid-breath
        (``terminate()`` here used to reap workers abruptly even after
        flawless builds).  ``terminate()`` remains the teardown for a pool
        declared broken *or* one that ever lost a task attempt: both hold
        state a clean join would block on forever (dead workers, or a
        result-cache entry whose producer died).
        """
        if self._pool is not None:
            try:
                if self._degraded or self._tainted:
                    self._pool.terminate()
                else:
                    self._pool.close()
                self._pool.join()
            finally:
                self._pool = None

    def _degrade(self, stage: str, error: BaseException) -> None:
        """Abandon the pool: tear it down and warn exactly once."""
        obs.counter("parallel.degraded_total").inc()
        obs.event("parallel.degraded", stage=stage)
        first = not self._degraded
        self._degraded = True
        if self._pool is not None:
            try:
                self._pool.terminate()
                self._pool.join()
            except Exception:  # pragma: no cover - teardown of a broken pool
                pass
            self._pool = None
        if first:
            warnings.warn(
                DegradedExecutionWarning(
                    f"parallel {stage} degraded to serial execution "
                    f"(supervised dispatch failed: {error}); the result is "
                    "unaffected -- the serial path is bit-identical"
                ),
                stacklevel=4,
            )

    def _dispatch(self, func, tasks, *, stage: str, respawn=None) -> bool:
        """Run tasks supervised; False means the caller must go serial."""
        if self._degraded:
            return False
        try:
            lost = run_supervised(
                self._ensure_pool(), func, tasks,
                policy=self.policy, respawn=respawn,
            )
            if lost:
                self._tainted = True
            return True
        except (TaskFailed, PoolBroken) as error:
            self._degrade(stage, error)
            return False

    # -- the segmented order sorts --------------------------------------
    def segmented_argsort(
        self,
        packed: np.ndarray,
        segment_offsets: np.ndarray,
        *,
        universe: int,
        max_segment: int,
        strategy: str = "auto",
    ) -> np.ndarray:
        """Stable ascending permutation of packed segment/key codes, sharded.

        Shard bounds are element-count quantiles snapped outward to segment
        boundaries -- a pure function of the input, independent of worker
        scheduling -- and each shard's stable permutation is computed
        independently (radix or argsort per ``strategy``; the choice cannot
        change the permutation).  Because segment blocks are ascending in
        the packed code space, concatenating the shard permutations equals
        the global stable permutation bit for bit.
        """
        total = int(packed.shape[0])
        bounds = self._segment_bounds(segment_offsets, total)
        if self._degraded or total == 0 or bounds.shape[0] <= 2:
            # Nothing to shard (empty input, one segment swallowing every
            # split point, or an executor already degraded): the serial
            # permutation is the same answer.
            return packed_argsort(
                packed, universe=universe, max_segment=max_segment, strategy=strategy
            )
        columns = _ColumnSet()
        with obs.span(
            "parallel.segmented_argsort",
            elements=total,
            shards=int(bounds.shape[0] - 1),
        ):
            try:
                packed_spec = columns.share(packed)
                out_spec, out = columns.allocate((total,), np.int64)
                tasks = [
                    (index, packed_spec, out_spec, int(lo), int(hi),
                     universe, max_segment, strategy)
                    for index, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:]))
                ]
                # Sort tasks overwrite disjoint slices deterministically, so a
                # retry re-runs with the original arguments (no respawn hook).
                if self._dispatch(_sort_worker, tasks, stage="segmented argsort"):
                    return out.copy()
            finally:
                columns.release()
        # Supervision gave up: finish this stage on the serial path, which
        # produces the identical permutation.
        return packed_argsort(
            packed, universe=universe, max_segment=max_segment, strategy=strategy
        )

    def _segment_bounds(self, segment_offsets: np.ndarray, total: int) -> np.ndarray:
        """Shard boundaries: jobs-quantiles snapped to segment starts."""
        segment_offsets = np.asarray(segment_offsets, dtype=np.int64)
        targets = (total * np.arange(1, self.jobs, dtype=np.int64)) // self.jobs
        snapped = segment_offsets[np.searchsorted(segment_offsets, targets)]
        return np.unique(np.concatenate(
            [np.zeros(1, dtype=np.int64), snapped, np.asarray([total], dtype=np.int64)]
        ))

    # -- the edge-similarity pass ---------------------------------------
    def sharded_numerators(
        self,
        graph,
        *,
        probe: str,
        chunk_pairs: int,
    ) -> np.ndarray | None:
        """Triangle contributions of every canonical edge (no base term).

        Returns ``None`` when the pass must stay serial: weighted graphs
        (contributions are float products whose summation order the merge
        would change), empty orientations, and an executor whose pool
        supervision has given up (the caller then runs the serial pass,
        which computes the identical numerators).  Otherwise shards the
        oriented arcs by candidate-pair counts, lets every worker run the
        serial chunk loop on its range, and sums the per-worker columns in
        shard order -- exact, because unweighted contributions are bounded
        integers.
        """
        if graph.edge_weights is not None or self._degraded:
            return None
        oriented = graph.degree_oriented_csr()
        num_oriented = int(oriented.indices.shape[0])
        num_edges = graph.num_edges
        if num_oriented == 0 or num_edges == 0:
            return None
        pair_counts = np.diff(oriented.indptr)[oriented.indices]
        cumulative = np.cumsum(pair_counts)
        total_pairs = int(cumulative[-1])
        shards = min(self.jobs, MAX_NUMERATOR_SHARDS)
        targets = (total_pairs * np.arange(1, shards, dtype=np.int64)) // shards
        cuts = np.searchsorted(cumulative, targets, side="left")
        bounds = np.unique(np.concatenate(
            [np.zeros(1, dtype=np.int64), cuts,
             np.asarray([num_oriented], dtype=np.int64)]
        ))
        columns = _ColumnSet()
        with obs.span(
            "parallel.similarity_pass",
            arcs=num_oriented,
            pairs=total_pairs,
            shards=int(bounds.shape[0] - 1),
        ):
            try:
                specs = {
                    "indptr": columns.share(oriented.indptr),
                    "targets": columns.share(oriented.indices),
                    "edge_ids": columns.share(oriented.edge_ids),
                    "weights": columns.share(oriented.weights),
                    "sources": columns.share(graph.oriented_arc_sources()),
                }
                if probe == "global":
                    specs["comp"] = columns.share(graph.oriented_search_keys())
                num_tasks = int(bounds.shape[0] - 1)
                # One private block per task rather than one big slab: retries
                # of a non-idempotent accumulation must land in *fresh* memory,
                # and per-task blocks let the respawn hook swap a single shard's
                # output without touching its siblings.
                outputs: dict[int, np.ndarray] = {}
                tasks = []
                for row, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
                    out_spec, out = columns.allocate((1, num_edges), np.float64)
                    outputs[row] = out
                    tasks.append((
                        row, specs, out_spec, 0, graph.num_vertices,
                        int(lo), int(hi), chunk_pairs, probe,
                    ))

                def respawn(index: int, attempt: int) -> tuple:
                    # Accumulation is += into the block, so an attempt that
                    # partially ran (or a straggler still limping along) has
                    # poisoned its block.  Hand the retry a fresh zeroed one and
                    # point the merge at it; the old block is never read again.
                    out_spec, out = columns.allocate((1, num_edges), np.float64)
                    outputs[index] = out
                    base = tasks[index]
                    return (base[0], base[1], out_spec, 0) + base[4:]

                if not self._dispatch(
                    _numerator_worker, tasks,
                    stage="similarity pass", respawn=respawn,
                ):
                    return None
                # Shard order; integer-valued columns, so the sum is exact and
                # equal to the serial left-to-right accumulation.  Copy out of
                # shared memory before the blocks are released below.
                merged = outputs[0][0].copy()
                for row in range(1, num_tasks):
                    merged += outputs[row][0]
                return merged
            finally:
                columns.release()
