"""Real multicore execution: worker processes over shared-memory columns.

Everything else in :mod:`repro.parallel` is the *simulated* runtime: the
:class:`~repro.parallel.scheduler.Scheduler` executes sequentially and
charges work/span so the paper's asymptotic claims are testable.  This
module is the other half the paper actually ran on 96 hyper-threads: a
``multiprocessing`` pool whose workers operate directly on
``multiprocessing.shared_memory``-backed numpy columns -- the arc arrays are
mapped, never pickled -- so index construction uses the machine's cores for
wall-clock time, not just for accounting.

Two construction stages shard:

* **the edge-similarity pass** (:meth:`ParallelExecutor.sharded_numerators`):
  the oriented arcs split into contiguous ranges balanced by candidate-pair
  counts; each worker accumulates its range's triangle contributions into a
  private output column and the master sums the columns in shard order.
  Restricted to unweighted graphs, where every contribution is a bounded
  integer and float64 addition is exact in any order -- which is what makes
  the merged result **bit-identical** to the serial accumulation.  Weighted
  graphs keep the serial similarity pass (float summation order would
  differ) while their order builds still shard.
* **the segmented order sorts** (:meth:`ParallelExecutor.segmented_argsort`):
  the packed ``(segment, key)`` codes split along segment boundaries; each
  worker computes the stable permutation of its slice.  Packed codes of
  earlier segments are strictly smaller than those of later segments, so the
  concatenation of per-shard stable sorts *is* the global stable sort --
  bit-identical by construction, for every strategy of
  :func:`~repro.parallel.sorting.packed_argsort`.

The determinism/merge contract, in one line: **shard boundaries are pure
functions of the input, every worker's output is deterministic, and merges
are exact (integer sums / disjoint writes) -- so the built index is
bit-identical to the serial build for every stored column, at any worker
count.**  Property tests in ``tests/parallel/test_execute.py`` enforce it.

Degradation is graceful and loud exactly once: ``jobs > 1`` falls back to
serial execution -- with a single :class:`RuntimeWarning` per reason -- when
``multiprocessing.shared_memory`` is unavailable on the platform or the
graph sits below :data:`PARALLEL_FLOOR_ARCS`, the measured size floor under
which pool startup dominates any possible win (recorded alongside the
scaling numbers in ``BENCH_construction.json``).
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

try:  # pragma: no cover - import guard exercised via monkeypatching
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

from .sorting import packed_argsort

__all__ = [
    "PARALLEL_FLOOR_ARCS",
    "ParallelExecutor",
    "executor_for",
    "resolve_jobs",
    "shared_memory_available",
    "visible_cpu_count",
]

#: Arc-count floor under which ``jobs > 1`` silently stays serial (after one
#: warning): forking the pool plus exporting/attaching the shared columns
#: costs ~25-80 ms (measured, ``BENCH_construction.json`` records the pool
#: startup of the benchmarking machine), which a serial build below this
#: size finishes outright.
PARALLEL_FLOOR_ARCS = 65_536

#: Upper bound on similarity-pass shards regardless of ``jobs``.  Every
#: shard owns a private ``num_edges`` float64 accumulation column, so the
#: slab grows linearly with the shard count -- at 96 workers on an
#: orkut-scale graph that would be tens of gigabytes of /dev/shm for a pass
#: that is memory-bandwidth bound long before then.  Sixteen concurrent
#: accumulators keep the slab at 16 columns while the order sorts (whose
#: shards are slices, not columns) still use every worker.
MAX_NUMERATOR_SHARDS = 16

#: Reasons already warned about (one warning per reason per process).
_warned: set[str] = set()


def shared_memory_available() -> bool:
    """True when ``multiprocessing.shared_memory`` is importable."""
    return _shared_memory is not None


def visible_cpu_count() -> int:
    """Cores this process may actually schedule on.

    ``os.cpu_count()`` reports the host's cores and ignores CPU affinity
    and cgroup pinning; inside a container limited to 2 of 64 cores it
    would fork 64 workers that timeshare 2.  The affinity mask is the
    honest count where the platform exposes it.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def resolve_jobs(jobs: int) -> int:
    """Resolve the public ``jobs`` knob: ``0`` means every visible core."""
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = all cores), got {jobs}")
    if jobs == 0:
        return visible_cpu_count()
    return jobs


def _warn_once(key: str, message: str) -> None:
    if key not in _warned:
        _warned.add(key)
        warnings.warn(message, RuntimeWarning, stacklevel=3)


def executor_for(jobs: int, *, num_arcs: int):
    """Context manager yielding a :class:`ParallelExecutor`, or ``None``.

    The serial outcomes -- ``jobs`` resolving to 1, shared memory being
    unavailable, or the graph sitting below :data:`PARALLEL_FLOOR_ARCS` --
    yield ``None`` so callers take the *identical* serial code path; the
    latter two warn once per process.
    """
    jobs = resolve_jobs(jobs)
    if jobs <= 1:
        return nullcontext(None)
    if not shared_memory_available():  # pragma: no cover - platform dependent
        _warn_once(
            "shared-memory",
            "multiprocessing.shared_memory is unavailable on this platform; "
            f"jobs={jobs} falls back to serial execution",
        )
        return nullcontext(None)
    if num_arcs < PARALLEL_FLOOR_ARCS:
        _warn_once(
            "size-floor",
            f"graph below the parallel size floor ({PARALLEL_FLOOR_ARCS} arcs, "
            "where worker-pool startup dominates any speedup); "
            f"jobs={jobs} falls back to serial execution",
        )
        return nullcontext(None)
    return ParallelExecutor(jobs)


# ----------------------------------------------------------------------
# Shared-memory column plumbing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedColumn:
    """Name/shape/dtype triple a worker needs to map one shared column."""

    shm_name: str
    shape: tuple
    dtype: str


def _attach(spec: SharedColumn):
    """Worker-side map of a shared column; caller must close the handle."""
    handle = _shared_memory.SharedMemory(name=spec.shm_name)
    array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=handle.buf)
    return handle, array


class _ColumnSet:
    """Master-side owner of the shared blocks of one pool dispatch."""

    def __init__(self) -> None:
        self._handles: list = []

    def share(self, array: np.ndarray) -> SharedColumn:
        """Copy ``array`` into a fresh shared block and return its spec."""
        array = np.ascontiguousarray(array)
        handle = _shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
        self._handles.append(handle)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=handle.buf)
        view[...] = array
        return SharedColumn(handle.name, tuple(array.shape), array.dtype.str)

    def allocate(self, shape: tuple, dtype) -> tuple[SharedColumn, np.ndarray]:
        """Zero-filled shared output block plus the master's view of it."""
        dtype = np.dtype(dtype)
        size = max(int(np.prod(shape)) * dtype.itemsize, 1)
        handle = _shared_memory.SharedMemory(create=True, size=size)
        self._handles.append(handle)
        view = np.ndarray(shape, dtype=dtype, buffer=handle.buf)
        view[...] = 0
        return SharedColumn(handle.name, tuple(shape), dtype.str), view

    def release(self) -> None:
        for handle in self._handles:
            handle.close()
            handle.unlink()
        self._handles.clear()


# ----------------------------------------------------------------------
# Worker entry points (top-level so every start method can pickle them)
# ----------------------------------------------------------------------
def _sort_worker(
    packed_spec: SharedColumn,
    out_spec: SharedColumn,
    lo: int,
    hi: int,
    universe: int,
    max_segment: int,
    strategy: str,
) -> None:
    """Stable permutation of ``packed[lo:hi]`` written to ``out[lo:hi]``.

    Shards write disjoint slices of one shared output column, so no
    synchronisation is needed; positions are absolute (offset by ``lo``).
    """
    handles = []
    try:
        handle, packed = _attach(packed_spec)
        handles.append(handle)
        handle, out = _attach(out_spec)
        handles.append(handle)
        out[lo:hi] = packed_argsort(
            packed[lo:hi],
            universe=universe,
            max_segment=max_segment,
            strategy=strategy,
        )
        out[lo:hi] += lo
    finally:
        for handle in handles:
            handle.close()


def _numerator_worker(
    column_specs: dict,
    out_spec: SharedColumn,
    out_row: int,
    num_vertices: int,
    arc_lo: int,
    arc_hi: int,
    chunk_pairs: int,
    probe: str,
) -> None:
    """Triangle contributions of oriented arcs ``[arc_lo, arc_hi)``.

    Accumulates into row ``out_row`` of the shared output slab through the
    exact chunk loop of the serial batch engine
    (:func:`repro.similarity.batch.accumulate_oriented_contributions`), so
    every worker's partial column is the integer-valued array the serial
    pass would have produced for the same arc range.
    """
    from ..similarity.batch import accumulate_oriented_contributions

    handles = []
    try:
        columns = {}
        for name, spec in column_specs.items():
            handle, array = _attach(spec)
            handles.append(handle)
            columns[name] = array
        handle, out = _attach(out_spec)
        handles.append(handle)
        accumulate_oriented_contributions(
            out[out_row],
            (
                columns["indptr"],
                columns["targets"],
                columns["edge_ids"],
                columns["weights"],
            ),
            columns["sources"],
            columns.get("comp"),
            num_vertices,
            arc_lo,
            arc_hi,
            chunk_pairs=chunk_pairs,
            probe=probe,
        )
    finally:
        for handle in handles:
            handle.close()


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class ParallelExecutor:
    """A worker pool that executes build stages over shared numpy columns.

    One executor spans one construction (or one dynamic-update re-sort):
    :meth:`~repro.core.index.ScanIndex.build` opens it, threads it through
    the similarity engine and both order builds, and closes it -- the pool
    forks once, every stage's columns are exported to shared memory for the
    duration of its dispatch, and nothing is pickled but shard bounds.

    Use as a context manager (or rely on :func:`executor_for`, which also
    applies the serial-fallback gates)::

        with ParallelExecutor(jobs=4) as executor:
            order = executor.segmented_argsort(packed, offsets, ...)
    """

    def __init__(self, jobs: int) -> None:
        jobs = resolve_jobs(jobs)
        if jobs < 2:
            raise ValueError(f"ParallelExecutor needs at least 2 jobs, got {jobs}")
        if not shared_memory_available():  # pragma: no cover - platform dependent
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self.jobs = jobs
        start_methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in start_methods else start_methods[0]
        self._context = multiprocessing.get_context(method)
        self._pool = None

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._context.Pool(self.jobs)
        return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    # -- the segmented order sorts --------------------------------------
    def segmented_argsort(
        self,
        packed: np.ndarray,
        segment_offsets: np.ndarray,
        *,
        universe: int,
        max_segment: int,
        strategy: str = "auto",
    ) -> np.ndarray:
        """Stable ascending permutation of packed segment/key codes, sharded.

        Shard bounds are element-count quantiles snapped outward to segment
        boundaries -- a pure function of the input, independent of worker
        scheduling -- and each shard's stable permutation is computed
        independently (radix or argsort per ``strategy``; the choice cannot
        change the permutation).  Because segment blocks are ascending in
        the packed code space, concatenating the shard permutations equals
        the global stable permutation bit for bit.
        """
        total = int(packed.shape[0])
        bounds = self._segment_bounds(segment_offsets, total)
        if total == 0 or bounds.shape[0] <= 2:
            # Nothing to shard (empty input, or one segment swallowing every
            # split point): the serial permutation is the same answer.
            return packed_argsort(
                packed, universe=universe, max_segment=max_segment, strategy=strategy
            )
        columns = _ColumnSet()
        try:
            packed_spec = columns.share(packed)
            out_spec, out = columns.allocate((total,), np.int64)
            tasks = [
                (packed_spec, out_spec, int(lo), int(hi), universe, max_segment, strategy)
                for lo, hi in zip(bounds[:-1], bounds[1:])
            ]
            self._ensure_pool().starmap(_sort_worker, tasks)
            return out.copy()
        finally:
            columns.release()

    def _segment_bounds(self, segment_offsets: np.ndarray, total: int) -> np.ndarray:
        """Shard boundaries: jobs-quantiles snapped to segment starts."""
        segment_offsets = np.asarray(segment_offsets, dtype=np.int64)
        targets = (total * np.arange(1, self.jobs, dtype=np.int64)) // self.jobs
        snapped = segment_offsets[np.searchsorted(segment_offsets, targets)]
        return np.unique(np.concatenate(
            [np.zeros(1, dtype=np.int64), snapped, np.asarray([total], dtype=np.int64)]
        ))

    # -- the edge-similarity pass ---------------------------------------
    def sharded_numerators(
        self,
        graph,
        *,
        probe: str,
        chunk_pairs: int,
    ) -> np.ndarray | None:
        """Triangle contributions of every canonical edge (no base term).

        Returns ``None`` when the pass must stay serial: weighted graphs
        (contributions are float products whose summation order the merge
        would change) and empty orientations.  Otherwise shards the
        oriented arcs by candidate-pair counts, lets every worker run the
        serial chunk loop on its range, and sums the per-worker columns in
        shard order -- exact, because unweighted contributions are bounded
        integers.
        """
        if graph.edge_weights is not None:
            return None
        oriented = graph.degree_oriented_csr()
        num_oriented = int(oriented.indices.shape[0])
        num_edges = graph.num_edges
        if num_oriented == 0 or num_edges == 0:
            return None
        pair_counts = np.diff(oriented.indptr)[oriented.indices]
        cumulative = np.cumsum(pair_counts)
        total_pairs = int(cumulative[-1])
        shards = min(self.jobs, MAX_NUMERATOR_SHARDS)
        targets = (total_pairs * np.arange(1, shards, dtype=np.int64)) // shards
        cuts = np.searchsorted(cumulative, targets, side="left")
        bounds = np.unique(np.concatenate(
            [np.zeros(1, dtype=np.int64), cuts,
             np.asarray([num_oriented], dtype=np.int64)]
        ))
        columns = _ColumnSet()
        try:
            specs = {
                "indptr": columns.share(oriented.indptr),
                "targets": columns.share(oriented.indices),
                "edge_ids": columns.share(oriented.edge_ids),
                "weights": columns.share(oriented.weights),
                "sources": columns.share(graph.oriented_arc_sources()),
            }
            if probe == "global":
                specs["comp"] = columns.share(graph.oriented_search_keys())
            num_tasks = int(bounds.shape[0] - 1)
            out_spec, out = columns.allocate((num_tasks, num_edges), np.float64)
            tasks = [
                (specs, out_spec, row, graph.num_vertices, int(lo), int(hi),
                 chunk_pairs, probe)
                for row, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:]))
            ]
            self._ensure_pool().starmap(_numerator_worker, tasks)
            # Shard order; integer-valued columns, so the sum is exact and
            # equal to the serial left-to-right accumulation.
            return out.sum(axis=0)
        finally:
            columns.release()
