"""Supervision for the real execution pool: timeouts, bounded retry, degradation.

The executor in :mod:`repro.parallel.execute` dispatches deterministic,
re-runnable tasks -- each one recomputes a pure function of shared
read-only columns into its own output region.  What it originally lacked
was any answer to a worker that *dies* (its task's result simply never
arrives and a bare ``starmap`` blocks forever), a transient ``OSError`` /
``MemoryError`` under memory pressure (one flake failed the whole build),
or a pool broken badly enough that submitting work raises.  This module is
that answer, with one contract:

**a supervised dispatch either completes every task with exactly the bytes
the serial path would have produced, or raises -- and the executor then
degrades to the bit-identical serial path with a single structured
warning.**  No third outcome: a worker death can cost wall-clock time,
never correctness.

Mechanics (:func:`run_supervised`):

* every task is submitted with ``apply_async`` and awaited under a
  **per-task timeout** -- the liveness backstop that converts a dead or
  wedged worker (whose result will never arrive) into a retryable event;
* timeouts and transient exceptions trigger **bounded retry with
  exponential backoff** (``base * 2**attempt``, capped); deterministic
  tasks make retry safe, and callers whose outputs are accumulated rather
  than overwritten pass a ``respawn`` hook handing each retry a *fresh*
  output block, so a half-written attempt (or a straggler that was merely
  slow, not dead) can never contaminate the merged result;
* non-transient worker exceptions and exhausted retries raise
  :class:`TaskFailed`; submission failures (a pool whose machinery is
  gone) raise :class:`PoolBroken` -- both of which the executor catches to
  **degrade to serial**, tearing the broken pool down and releasing every
  shared-memory segment on the way (the ``finally`` blocks in
  ``execute.py`` hold that invariant on every error path).

The fault points ``parallel.worker.task`` (worker entry, armable as a real
``os._exit`` kill) and ``parallel.dispatch`` (master-side submission,
armable as a transient error) are what the chaos suite drives; see
:mod:`repro.testing.faults`.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass

from .. import obs
from ..testing.faults import fault_point

__all__ = [
    "DegradedExecutionWarning",
    "PoolBroken",
    "SupervisionPolicy",
    "TaskFailed",
    "run_supervised",
]


class DegradedExecutionWarning(RuntimeWarning):
    """Pool execution degraded to the bit-identical serial path.

    Issued exactly once per executor when supervision gives up on the
    worker pool.  Structured so operators can filter on the category: the
    message names the failing stage and the reason, and the degradation
    changes wall-clock time only -- never the built index.
    """


class TaskFailed(RuntimeError):
    """A supervised task failed permanently (retries exhausted or fatal error)."""

    def __init__(self, index: int, attempts: int, cause: BaseException | None):
        detail = f": {cause!r}" if cause is not None else ""
        super().__init__(
            f"pool task {index} failed permanently after {attempts} attempt(s)"
            f"{detail}"
        )
        self.index = index
        self.attempts = attempts
        self.cause = cause


class PoolBroken(RuntimeError):
    """The pool itself cannot accept or return work (submission failed)."""


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs of one supervised dispatch.

    Attributes
    ----------
    task_timeout:
        Seconds to wait for one task attempt before declaring its worker
        dead or wedged.  This is a liveness backstop, not a performance
        bound: set it far above any legitimate task duration, because a
        retry racing a merely-slow straggler wastes a core (correctness is
        still safe -- stragglers write either identical bytes or discarded
        blocks).  The default is generous for exactly that reason.
    retries:
        Re-submissions allowed per task after its first attempt.
    backoff_base / backoff_cap:
        Exponential backoff between attempts: ``min(cap, base * 2**attempt)``
        seconds.  Gives transient conditions (memory pressure, fd
        exhaustion) time to clear instead of hammering the pool.
    transient:
        Exception types worth retrying.  Everything else -- a
        ``ValueError`` from a shape mismatch, say -- is a bug, fails the
        dispatch immediately, and surfaces through the degradation warning
        rather than being silently retried.
    """

    task_timeout: float = 300.0
    retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    transient: tuple = (OSError, MemoryError)

    def backoff(self, attempt: int) -> float:
        """Seconds to sleep before re-submission number ``attempt`` (1-based)."""
        return min(self.backoff_cap, self.backoff_base * (2.0 ** (attempt - 1)))


def _submit(pool, func, args):
    """Submit one task, converting submission failure into PoolBroken."""
    try:
        fault_point("parallel.dispatch")
        return pool.apply_async(func, args)
    except Exception as error:
        raise PoolBroken(f"worker pool cannot accept tasks: {error!r}") from error


def run_supervised(pool, func, tasks, *, policy: SupervisionPolicy,
                   respawn=None) -> int:
    """Execute every task on ``pool``, retrying failures within ``policy``.

    Parameters
    ----------
    pool:
        A ``multiprocessing.Pool`` (or compatible) the tasks run on.
    func:
        Picklable worker entry point.
    tasks:
        Sequence of argument tuples; task ``i`` is ``func(*tasks[i])``.
        Tasks must be deterministic and independently re-runnable.
    policy:
        Timeouts/retry/backoff knobs; see :class:`SupervisionPolicy`.
    respawn:
        Optional ``(index, attempt) -> args`` hook producing the argument
        tuple for a *retry* of task ``index``.  Callers whose workers
        accumulate (rather than idempotently overwrite) use it to hand
        each retry a fresh output block, keeping half-written first
        attempts out of the merge.  ``None`` retries with the original
        arguments.

    Raises :class:`TaskFailed` on permanent task failure, :class:`PoolBroken`
    when the pool cannot accept work.  On success, every task has run to
    completion exactly once *from the merge's point of view*: the output
    region named by each task's final (completed) argument tuple holds the
    full deterministic result.

    Returns the number of **lost attempts** -- submissions that never
    produced a result (worker dead or wedged past the timeout).  A lost
    attempt permanently strands its entry in the pool's result cache, after
    which ``Pool.close()`` + ``join()`` would block forever waiting for a
    result that cannot arrive; a caller seeing a nonzero count must tear
    such a pool down with ``terminate()`` even though the dispatch as a
    whole succeeded.
    """
    # Submit everything up front -- workers start on later shards while the
    # master awaits earlier ones -- then await in task order.  Supervision
    # events are cold (per shard, not per element), so the counters and
    # trace events here are always on.
    task_seconds = obs.histogram("parallel.task_seconds")
    retries_total = obs.counter("parallel.task_retries_total")
    timeouts_total = obs.counter("parallel.task_timeouts_total")
    lost_total = obs.counter("parallel.tasks_lost_total")
    attempts = [1] * len(tasks)
    lost = 0
    dispatched = time.perf_counter()
    pending = [_submit(pool, func, args) for args in tasks]
    for index in range(len(tasks)):
        while True:
            try:
                pending[index].get(timeout=policy.task_timeout)
                # Dispatch-to-completion latency of this task (awaits run in
                # task order, so this also bounds the straggler tail).
                task_seconds.observe(time.perf_counter() - dispatched)
                break
            except multiprocessing.TimeoutError as error:
                cause: BaseException = error
                lost += 1
                lost_total.inc()
                timeouts_total.inc()
                obs.event(
                    "parallel.task_timeout", task=index, attempt=attempts[index]
                )
            except policy.transient as error:
                cause = error
            except Exception as error:
                raise TaskFailed(index, attempts[index], error) from error
            if attempts[index] > policy.retries:
                raise TaskFailed(index, attempts[index], cause) from cause
            time.sleep(policy.backoff(attempts[index]))
            args = tasks[index] if respawn is None else respawn(
                index, attempts[index]
            )
            attempts[index] += 1
            retries_total.inc()
            obs.event("parallel.task_retry", task=index, attempt=attempts[index])
            pending[index] = _submit(pool, func, args)
    return lost
