"""repro: parallel index-based structural graph clustering (SCAN) and its approximation.

A from-scratch Python reproduction of Tseng, Dhulipala and Shun,
"Parallel Index-Based Structural Graph Clustering and Its Approximation"
(SIGMOD 2021).  The top-level package re-exports the pieces most users need:

* :class:`~repro.core.index.ScanIndex` -- build the index once, query
  clusterings for any ``(mu, epsilon)``;
* :class:`~repro.lsh.approximate.ApproximationConfig` -- switch index
  construction to LSH-approximated similarities;
* :class:`~repro.core.clustering.Clustering` -- the query result type;
* :class:`~repro.dynamic.UpdateBatch` -- batched edge insertions/deletions
  applied in place via :meth:`ScanIndex.apply_updates
  <repro.core.index.ScanIndex.apply_updates>`, bit-identical to a rebuild
  on the mutated graph at a fraction of the cost;
* the graph constructors and generators under :mod:`repro.graphs`.

Similarity backends
-------------------
:func:`~repro.similarity.exact.compute_similarities` (and
``ScanIndex.build``) accept a ``backend`` selecting the exact similarity
engine:

* ``"batch"`` (default) -- the fully vectorised engine
  (:mod:`repro.similarity.batch`): chunked ``(arc, candidate)`` pair
  expansion over the degree-oriented CSR, one ``np.searchsorted`` per chunk
  and bincount scatter-adds.  Zero per-arc Python iteration; the fastest
  choice at every graph size.  Charges the merge engine's ``O(m^{3/2})``
  work / ``O(log n)`` span.
* ``"merge"`` -- the scalar reference for ``batch``: per-arc sorted-list
  merges on the degree orientation (Section 6.1).  Identical scheduler
  charges, interpreter-speed execution; kept for cross-checking.
* ``"hash"`` -- Algorithm 1 verbatim with lazily built per-vertex hash
  tables; the ``O(α m)`` work-bound reference exercised by tests.
* ``"matmul"`` -- numerators via the squared weight matrix ``W²``
  (Section 4.1.1); wins only on small dense graphs where ``n²`` memory is
  acceptable.

See the :mod:`repro.similarity.exact` module docstring for the full matrix
with work bounds, and ``benchmarks/bench_hot_paths.py`` for measured
construction/query times of every backend on growing planted-partition
graphs.
"""

from .core.clustering import UNCLUSTERED, Clustering
from .core.index import ScanIndex
from .dynamic import UpdateBatch, UpdateReport
from .lsh.approximate import ApproximationConfig, compute_approximate_similarities
from .serve import ClusterSession, ServedResult
from .similarity.exact import EdgeSimilarities, compute_similarities
from .storage import (
    ArtifactFormatError,
    ArtifactIntegrityError,
    IndexArtifact,
    verify_artifact,
)

__version__ = "1.4.0"

__all__ = [
    "UNCLUSTERED",
    "Clustering",
    "ClusterSession",
    "ScanIndex",
    "ServedResult",
    "ApproximationConfig",
    "ArtifactFormatError",
    "ArtifactIntegrityError",
    "verify_artifact",
    "EdgeSimilarities",
    "IndexArtifact",
    "UpdateBatch",
    "UpdateReport",
    "compute_similarities",
    "compute_approximate_similarities",
    "__version__",
]
