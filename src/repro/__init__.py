"""repro: parallel index-based structural graph clustering (SCAN) and its approximation.

A from-scratch Python reproduction of Tseng, Dhulipala and Shun,
"Parallel Index-Based Structural Graph Clustering and Its Approximation"
(SIGMOD 2021).  The top-level package re-exports the pieces most users need:

* :class:`~repro.core.index.ScanIndex` -- build the index once, query
  clusterings for any ``(mu, epsilon)``;
* :class:`~repro.lsh.approximate.ApproximationConfig` -- switch index
  construction to LSH-approximated similarities;
* :class:`~repro.core.clustering.Clustering` -- the query result type;
* the graph constructors and generators under :mod:`repro.graphs`.
"""

from .core.clustering import UNCLUSTERED, Clustering
from .core.index import ScanIndex
from .lsh.approximate import ApproximationConfig, compute_approximate_similarities
from .similarity.exact import EdgeSimilarities, compute_similarities

__version__ = "1.0.0"

__all__ = [
    "UNCLUSTERED",
    "Clustering",
    "ScanIndex",
    "ApproximationConfig",
    "EdgeSimilarities",
    "compute_similarities",
    "compute_approximate_similarities",
    "__version__",
]
