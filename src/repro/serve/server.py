"""Concurrent serving front end: asyncio socket server over forked workers.

``ClusterServer`` listens on a TCP socket for newline-delimited
``MU:EPSILON`` requests (the exact wire format of the single-session
``repro serve`` loop; see :mod:`repro.serve.wire`) and dispatches each to
one of N forked worker processes.  Every worker holds a
:class:`~repro.serve.session.ClusterSession` over its own mmap of the same
saved artifact, so the answers are bit-identical to single-session serving
at any worker count.

Seven contracts define the tier:

Cache affinity
    A request is routed by hashing its snapped ``(μ, ε-rank)`` pair -- the
    session cache key modulo generation -- to a fixed worker, so repeats of
    a setting always land where that setting's LRU entry lives.  Routing is
    deterministic and independent of arrival order or connection.

Deadlines and hedging
    Every request carries a budget of ``request_deadline`` seconds per
    dispatch attempt (default well under the 30 s supervision timeout).  A
    worker that does not answer within the deadline is *hedged around*: the
    request is re-issued to the next worker in ring order instead of
    waiting out the affinity worker -- a wedged worker can therefore never
    head-of-line-block its whole affinity bucket.  Replies are matched to
    requests by id, so a straggler's late answer is dropped (counted in
    ``serve.late_replies_total``), never mis-delivered.  A worker whose
    oldest unanswered request exceeds ``policy.task_timeout`` is declared
    wedged by a watchdog and killed + respawned.

Admission control and load shedding
    At most ``max_inflight`` requests are admitted concurrently, and at
    most ``max_queue_depth`` may be outstanding on one worker pipe.  Past
    the high-water mark the server answers ``error: overloaded (shed)``
    immediately instead of queueing unboundedly -- a bounded, observable
    answer (``serve.requests_shed_total``, ``serve.inflight`` gauge,
    per-worker queue-depth gauges) beats an unbounded queue collapsing.
    Control lines (``!stats``, ``!metrics``, ``!drain``) bypass admission:
    an overloaded tier must stay observable and drainable.

Supervision (the :mod:`repro.parallel.supervise` contract)
    A worker that dies (pipe EOF) is killed and respawned, and the request
    retried on the fresh worker up to ``policy.retries`` times; the session
    state is cache only, so a retry is always safe.

Circuit-breaker degradation and recovery
    A pool beyond saving -- respawn itself failing -- degrades the server
    to in-process serving with one structured
    :class:`DegradedServingWarning` (the circuit *opens*).  Degradation is
    a state, not a terminal flip: a background probe retries pool
    construction under exponential backoff (``probe_interval`` doubling up
    to ``PROBE_BACKOFF_CAP``); once a fresh pool spawns, a half-open phase
    routes one canary request through it before full fan-out is restored
    and a ``serve.recovered`` event fires.  Requests keep being answered
    in-process throughout -- availability never waits on recovery.

Generation flips
    The server owns a monotonic artifact generation, bumped by the
    ``!invalidate`` control line (sent after ``repro update`` swaps the
    artifact on disk).  Every request carries the current generation and a
    worker reloads the artifact before answering a newer one, so every
    response acked after the ``!invalidate`` ack reflects the updated
    artifact -- no stale-generation answers, on any worker.  The flip also
    reaches the in-process fallback session, so it holds under degradation.

Graceful drain
    ``SIGTERM`` (wired by the CLI) or the ``!drain`` control line stops
    accepting new connections, lets in-flight requests finish inside
    ``drain_deadline`` seconds, flushes one final merged metric snapshot
    from the workers, then shuts the pool down cleanly -- the CLI exits 0.
    In-flight requests are never cancelled inside the deadline; idle
    connections are closed.

The chaos suite drives these paths through the registered fault sites
``serve.dispatch``, ``serve.worker.request`` / ``serve.worker.reload``
(worker side), ``serve.drain`` and ``serve.recovery.probe``; see
:mod:`repro.testing.faults`.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import time
import warnings
from pathlib import Path

from .. import obs
from ..obs.metrics import merge_snapshots
from ..parallel.supervise import DegradedExecutionWarning, SupervisionPolicy
from ..testing.faults import fault_point
from . import wire
from .worker import worker_main


class DegradedServingWarning(DegradedExecutionWarning):
    """The worker pool could not be kept alive; serving fell back in-process."""


#: Supervision defaults for serving: interactive latencies, so a wedged
#: worker is declared dead far sooner than a batch task would be.
SERVING_POLICY = SupervisionPolicy(task_timeout=30.0, retries=2)

#: Per-attempt request deadline before dispatch hedges to the next worker.
DEFAULT_REQUEST_DEADLINE = 5.0
#: Server-wide concurrent-request high-water mark; above it requests shed.
DEFAULT_MAX_INFLIGHT = 64
#: Outstanding requests allowed on one worker pipe before it is skipped.
DEFAULT_MAX_QUEUE_DEPTH = 8
#: Seconds granted to in-flight requests when draining.
DEFAULT_DRAIN_DEADLINE = 5.0
#: First recovery-probe delay; doubles per failed probe up to the cap.
DEFAULT_PROBE_INTERVAL = 1.0
PROBE_BACKOFF_CAP = 30.0


def route(mu: int, rank: int, num_workers: int) -> int:
    """Deterministic worker index for a snapped ``(μ, ε-rank)`` setting.

    A Fibonacci-style integer mix keeps neighbouring settings from mapping
    to the same worker; the result depends only on the setting and the
    worker count, never on arrival order, which is what pins a setting's
    cache entry to one worker.
    """
    return int((mu * 2654435761 + rank * 40503) % num_workers)


class _WorkerHandle:
    """One forked worker process plus its pipe and reply multiplexing.

    Replies are matched to requests by id (``_pending``), so several
    requests may be outstanding on one pipe at once -- the worker answers
    them serially, the front end's deadline bounds how long anyone waits.
    ``outstanding`` keeps the send time of every unanswered request
    (including ones whose caller already hedged away) for the wedge
    watchdog; a reply with no waiting future is a straggler's late answer
    and is dropped.
    """

    def __init__(self, server: "ClusterServer", worker_id: int) -> None:
        self.server = server
        self.worker_id = worker_id
        self.process = None
        self.connection = None
        self.requests = 0
        self.restarts = 0
        self.epoch = 0
        self.dead = False
        self.outstanding: dict[int, float] = {}
        self.watchdog: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}

    @property
    def queue_depth(self) -> int:
        """Unanswered requests on this worker's pipe (the shedding signal)."""
        return len(self.outstanding)

    def spawn(self) -> None:
        """Fork the worker process and register its reply pipe."""
        # Fault site: an injected OSError here is exactly a failed fork,
        # the only trigger of the degrade -> probe -> recover circuit.
        fault_point("serve.worker.spawn", task=self.worker_id)
        context = self.server._mp_context
        parent_end, child_end = context.Pipe(duplex=True)
        process = context.Process(
            target=worker_main,
            args=(str(self.server.artifact_path), self.worker_id, child_end),
            kwargs={
                "cache_size": self.server.cache_size,
                "deterministic": self.server.deterministic,
                "generation": self.server.generation,
                "trace_path": self.server._worker_trace_path(self.worker_id),
            },
            daemon=True,
        )
        process.start()
        child_end.close()
        self.process = process
        self.connection = parent_end
        self.epoch += 1
        self.dead = False
        self.outstanding = {}
        asyncio.get_running_loop().add_reader(parent_end.fileno(), self._on_readable)

    def _on_readable(self) -> None:
        try:
            message = self.connection.recv()
        except (EOFError, OSError):
            message = None
        if message is None or message[0] == "dead":
            # The pipe is gone (or the worker reported an unloadable
            # artifact): fail every waiter now and unregister the fd --
            # an EOF'd pipe stays readable forever and would spin the loop.
            self._teardown_pipe()
            return
        request_id = message[1]
        self.outstanding.pop(request_id, None)
        future = self._pending.pop(request_id, None)
        if future is None:
            # The caller hedged away before this answer arrived: count the
            # straggler and drop its bytes, never mis-deliver them.
            self.server._late_replies_total.inc()
        elif not future.done():
            future.set_result(message)

    def _teardown_pipe(self) -> None:
        """Unregister and close the pipe, failing every pending future."""
        self.dead = True
        if self.connection is not None:
            try:
                asyncio.get_running_loop().remove_reader(self.connection.fileno())
            except (RuntimeError, OSError):
                pass
            try:
                self.connection.close()
            except OSError:
                pass
            self.connection = None
        self.outstanding = {}
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_result(None)

    async def request(self, message: tuple, timeout: float):
        """Send one message and await its reply.

        Returns the reply tuple, or ``None`` when the worker is dead
        (pipe closed before or during the wait).  Raises
        :class:`asyncio.TimeoutError` when the worker is alive but has not
        answered within ``timeout`` -- the caller's cue to hedge; the
        request stays in ``outstanding`` so the watchdog can tell a
        straggler from a wedge.
        """
        if self.connection is None or self.dead:
            return None
        loop = asyncio.get_running_loop()
        request_id = message[1]
        future = loop.create_future()
        self._pending[request_id] = future
        self.outstanding[request_id] = loop.time()
        try:
            self.connection.send(message)
        except (OSError, ValueError):
            self._pending.pop(request_id, None)
            self.outstanding.pop(request_id, None)
            return None
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            # Abandon the wait but not the bookkeeping: `outstanding`
            # keeps the send time so the watchdog can reap a true wedge.
            self._pending.pop(request_id, None)
            raise

    def kill(self) -> None:
        """Tear the worker down unconditionally (restart or shutdown path)."""
        self._teardown_pipe()
        if self.watchdog is not None:
            if self.watchdog is not asyncio.current_task():
                self.watchdog.cancel()
            self.watchdog = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=5.0)
            if self.process.is_alive():  # pragma: no cover - defensive
                self.process.kill()
                self.process.join(timeout=5.0)
            self.process = None

    async def stop(self) -> None:
        """Polite shutdown: ask the loop to exit, then reap the process."""
        stopped = False
        if self.connection is not None and not self.dead:
            try:
                self.connection.send(("stop",))
                stopped = True
            except (OSError, ValueError):
                pass
        if stopped and self.process is not None:
            # Grace period before the unconditional teardown: the worker's
            # exit path syncs its session counters and writes the final
            # trace snapshot, which a premature terminate() would truncate.
            deadline = asyncio.get_running_loop().time() + 2.0
            while (
                self.process.is_alive()
                and asyncio.get_running_loop().time() < deadline
            ):
                await asyncio.sleep(0.01)
        self.kill()


class ClusterServer:
    """Multi-worker serving front end over one saved index artifact."""

    def __init__(
        self,
        artifact_path: str | Path,
        *,
        workers: int = 2,
        cache_size: int = 256,
        deterministic: bool = False,
        policy: SupervisionPolicy | None = None,
        request_deadline: float = DEFAULT_REQUEST_DEADLINE,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        drain_deadline: float = DEFAULT_DRAIN_DEADLINE,
        probe_interval: float = DEFAULT_PROBE_INTERVAL,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if request_deadline <= 0:
            raise ValueError(f"request deadline must be positive, got {request_deadline}")
        if max_inflight < 1:
            raise ValueError(f"need max_inflight >= 1, got {max_inflight}")
        if max_queue_depth < 1:
            raise ValueError(f"need max_queue_depth >= 1, got {max_queue_depth}")
        self.artifact_path = Path(artifact_path)
        self.num_workers = int(workers)
        self.cache_size = int(cache_size)
        self.deterministic = bool(deterministic)
        self.policy = policy if policy is not None else SERVING_POLICY
        self.request_deadline = float(request_deadline)
        self.max_inflight = int(max_inflight)
        self.max_queue_depth = int(max_queue_depth)
        self.drain_deadline = float(drain_deadline)
        self.probe_interval = float(probe_interval)
        self.generation = 0
        self.degraded = False
        self.draining = False
        self.served = 0
        self.final_snapshot: dict | None = None
        self._mp_context = multiprocessing.get_context("fork")
        self._workers: list[_WorkerHandle] = []
        self._request_counter = 0
        self._inflight = 0
        self._restarts_count = 0
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._fallback_session = None
        self._probe_task: asyncio.Task | None = None
        self._drain_task: asyncio.Task | None = None
        self._drained: asyncio.Event | None = None
        # The front end's own mmap of the artifact: snapping ranks for the
        # affinity hash, and the in-process fallback when the pool is gone.
        from ..core.index import ScanIndex
        from .snapping import EpsilonSnapper

        self._index = ScanIndex.load(self.artifact_path)
        self._snapper = EpsilonSnapper.from_index(self._index)
        # Metric handles resolved once: the per-request cost of always-on
        # metrics is one clock pair, one histogram bisect, one counter add.
        self._request_seconds = obs.histogram("serve.request_seconds")
        self._requests_total = obs.counter("serve.requests_total")
        self._errors_total = obs.counter("serve.errors_total")
        self._restarts_total = obs.counter("serve.worker_restarts_total")
        self._degraded_requests_total = obs.counter("serve.requests_degraded_total")
        self._requests_shed_total = obs.counter("serve.requests_shed_total")
        self._hedges_total = obs.counter("serve.hedges_total")
        self._late_replies_total = obs.counter("serve.late_replies_total")
        self._recovered_total = obs.counter("serve.recovered_total")
        self._inflight_gauge = obs.gauge("serve.inflight")

    def _worker_trace_path(self, worker_id: int) -> str | None:
        """Per-worker trace file next to the front end's (or ``None``).

        Workers cannot share the front end's JSONL file -- concurrent line
        writes from forked processes interleave -- so worker ``k`` traces
        to ``<front-end-path>.worker<k>``.
        """
        path = obs.tracer().path
        return None if path is None else f"{path}.worker{worker_id}"

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Spawn the workers and start accepting connections.

        Returns the bound ``(host, port)`` (``port=0`` binds an ephemeral
        port, useful for tests and CI).
        """
        self._drained = asyncio.Event()
        for worker_id in range(self.num_workers):
            handle = _WorkerHandle(self, worker_id)
            try:
                handle.spawn()
            except OSError as error:
                self._degrade(f"worker {worker_id} failed to spawn: {error!r}")
                break
            self._workers.append(handle)
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def close(self) -> None:
        """Stop accepting, then stop every worker.  Idempotent."""
        for task in (self._probe_task, *[h.watchdog for h in self._workers]):
            if task is not None and not task.done():
                task.cancel()
        self._probe_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Retire open connection handlers while the loop is still running --
        # tasks alive at loop shutdown surface as CancelledError noise.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        for handle in self._workers:
            await handle.stop()
        self._workers = []

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("server not started")
        await self._server.serve_forever()

    # -- graceful drain ----------------------------------------------------

    def request_drain(self) -> asyncio.Task:
        """Begin a graceful drain (idempotent); returns the drain task.

        Callable from a signal handler: all work happens in the returned
        task on the running loop.
        """
        if self._drain_task is None:
            self._drain_task = asyncio.ensure_future(self._drain())
        return self._drain_task

    async def drain(self) -> dict | None:
        """Drain gracefully and return the final merged metric snapshot."""
        return await self.request_drain()

    async def _drain(self) -> dict | None:
        self.draining = True
        obs.counter("serve.drains_total").inc()
        obs.event("serve.drain_start", inflight=self._inflight)
        # Fault site: chaos delays/crashes the drain window deterministically.
        fault_point("serve.drain")
        if self._probe_task is not None and not self._probe_task.done():
            self._probe_task.cancel()
            self._probe_task = None
        # Stop accepting new connections first; existing connections keep
        # their in-flight request, and their handler loops exit at the next
        # response boundary (see _handle_connection).
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_deadline
        while self._inflight > 0 and loop.time() < deadline:
            await asyncio.sleep(0.01)
        forced = self._inflight > 0
        # Flush one final merged snapshot while the workers still live, so
        # the fleet totals as of the drain survive the pool teardown.
        try:
            self.final_snapshot = await self.metrics_snapshot()
        except Exception:  # pragma: no cover - introspection must not block exit
            self.final_snapshot = None
        obs.event(
            "serve.drain_complete", inflight=self._inflight, forced=forced
        )
        await self.close()
        if self._drained is not None:
            self._drained.set()
        return self.final_snapshot

    # -- request path ------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    raw = await reader.readline()
                except ValueError:
                    # readline() raises ValueError (from LimitOverrunError)
                    # on a >64 KiB line with no newline and clears its
                    # buffer: the request is unusable but the connection is
                    # fine, so answer inline and keep serving.  Chunks of
                    # the oversized line still in flight surface as parse
                    # errors on subsequent reads -- also inline, also
                    # non-fatal.
                    self._errors_total.inc()
                    writer.write(
                        (wire.format_error("request line too long") + "\n")
                        .encode("utf-8")
                    )
                    await writer.drain()
                    continue
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line or line.startswith("#"):
                    continue
                if line.startswith(wire.CONTROL_PREFIX):
                    response = await self._handle_control(line)
                else:
                    response = await self._handle_request(line)
                writer.write((response + "\n").encode("utf-8"))
                await writer.drain()
                if self.draining:
                    # Response boundary during a drain: this connection's
                    # in-flight work is done, close it out.
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:
            # Cancelled by close(): the connection is being retired, which
            # is an orderly outcome, not an error to propagate.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            # close() without wait_closed(): awaiting the handshake here
            # leaves the handler task parked in the finally when the event
            # loop shuts down, which surfaces as spurious CancelledError
            # noise; the transport finishes closing on its own.
            writer.close()

    async def _handle_control(self, line: str) -> str:
        command = line[len(wire.CONTROL_PREFIX):].strip().lower()
        if command == "invalidate":
            await self._invalidate()
            return f"invalidated generation={self.generation}"
        if command == "stats":
            return json.dumps(await self.stats_full(), sort_keys=True)
        if command == "metrics":
            return json.dumps(await self.metrics_snapshot(), sort_keys=True)
        if command == "drain":
            self.request_drain()
            return f"draining deadline={self.drain_deadline:g}"
        return wire.format_error(f"unknown control command {line!r}")

    async def _handle_request(self, line: str) -> str:
        started = time.perf_counter()
        try:
            mu, epsilon = wire.parse_request(line)
            if mu < 2:
                raise ValueError(f"mu must be at least 2, got {mu}")
            if not 0.0 <= epsilon <= 1.0:
                raise ValueError(f"epsilon must lie in [0, 1], got {epsilon}")
        except ValueError as error:
            self._errors_total.inc()
            return wire.format_error(error)
        # Admission control: past the high-water mark the honest answer is
        # an immediate structured refusal, not an unbounded queue.
        if self._inflight >= self.max_inflight:
            return self._shed("server inflight high-water mark")
        self.served += 1
        self._requests_total.inc()
        self._inflight += 1
        self._inflight_gauge.set(self._inflight)
        try:
            if self.degraded or not self._workers:
                response = self._serve_in_process(mu, epsilon)
            else:
                rank = self._snapper.rank(epsilon)
                # Unconditional span: on this path one shared no-op context
                # manager is noise against the pipe round trip, so no
                # obs.on() gate needed.
                with obs.span("serve.request", mu=mu, rank=rank):
                    response = await self._dispatch(mu, epsilon, rank)
        finally:
            self._inflight -= 1
            self._inflight_gauge.set(self._inflight)
        self._request_seconds.observe(time.perf_counter() - started)
        return response

    def _shed(self, reason: str) -> str:
        self._requests_shed_total.inc()
        obs.event("serve.shed", reason=reason)
        return wire.format_error("overloaded (shed)")

    async def _attempt(self, handle: _WorkerHandle, mu: int, epsilon: float):
        """One dispatch attempt; returns ``(response_or_None, outcome)``.

        ``outcome`` is ``"ok"`` (response ready), ``"timeout"`` (hedge) or
        ``"dead"`` (worker gone / pipe broken / dispatch fault).
        """
        self._request_counter += 1
        message = ("serve", self._request_counter, self.generation, mu, epsilon)
        try:
            # Fault site: chaos arms transient front-end dispatch failures.
            fault_point("serve.dispatch")
            reply = await handle.request(
                message, min(self.request_deadline, self.policy.task_timeout)
            )
        except asyncio.TimeoutError:
            return None, "timeout"
        except (OSError, ValueError):
            return None, "dead"
        if reply is None or reply[0] not in ("ok", "error"):
            return None, "dead"
        if reply[0] == "error":
            return wire.format_error(reply[2]), "ok"
        return reply[2], "ok"

    def _respawn(self, handle: _WorkerHandle) -> bool:
        """Kill + refork one worker; opens the circuit when the fork fails."""
        handle.kill()
        try:
            handle.spawn()
        except OSError as error:
            self._degrade(
                f"worker {handle.worker_id} could not be respawned: {error!r}"
            )
            return False
        handle.restarts += 1
        self._restarts_count += 1
        self._restarts_total.inc()
        obs.event("serve.worker.restart", worker=handle.worker_id)
        return True

    async def _dispatch(self, mu: int, epsilon: float, rank: int) -> str:
        """Deadline-bounded dispatch with hedging and bounded respawn-retry.

        Workers are tried in ring order starting at the affinity worker;
        a deadline expiry hedges to the next one (arming the wedge
        watchdog on the slow worker), a dead worker is respawned and
        retried up to ``policy.retries`` times across the whole request,
        and a fully saturated ring sheds.  The in-process fallback is the
        final backstop, so every admitted request gets an answer.
        """
        workers = self._workers
        count = len(workers)
        primary = route(mu, rank, count)
        respawns_left = max(self.policy.retries, 0)
        saturated = 0
        tried = 0
        for hop in range(count):
            if self._workers is not workers:
                # The pool was replaced (recovery) mid-request; the old
                # handles are dead.  Answer in-process rather than racing
                # the new pool's spawn.
                break
            handle = workers[(primary + hop) % count]
            if handle.queue_depth >= self.max_queue_depth:
                saturated += 1
                continue
            if hop > 0:
                self._hedges_total.inc()
                obs.event(
                    "serve.hedge", mu=mu, rank=rank, hop=hop,
                    worker=handle.worker_id,
                )
            tried += 1
            response, outcome = await self._attempt(handle, mu, epsilon)
            while (
                outcome == "dead"
                and respawns_left > 0
                and self._workers is workers
            ):
                respawns_left -= 1
                if not self._respawn(handle):
                    return self._serve_in_process(mu, epsilon)
                response, outcome = await self._attempt(handle, mu, epsilon)
            if outcome == "ok":
                handle.requests += 1
                return response
            if outcome == "timeout":
                # The affinity (or hedged) worker blew the deadline: leave
                # its request outstanding, arm the watchdog that reaps a
                # true wedge at task_timeout, and hedge onward.
                self._watch(handle)
                continue
            # outcome == "dead" with retries exhausted: try the next worker.
        if tried == 0 and saturated > 0:
            return self._shed("every worker queue at max depth")
        return self._serve_in_process(mu, epsilon)

    # -- wedge watchdog ----------------------------------------------------

    def _watch(self, handle: _WorkerHandle) -> None:
        """Arm (once) the watchdog that reaps ``handle`` if it is wedged."""
        if handle.watchdog is not None and not handle.watchdog.done():
            return
        handle.watchdog = asyncio.ensure_future(
            self._reap_if_wedged(handle, handle.epoch)
        )

    async def _reap_if_wedged(self, handle: _WorkerHandle, epoch: int) -> None:
        """Kill + respawn ``handle`` when its oldest request exceeds task_timeout.

        A straggler that answers (late replies clear ``outstanding``)
        disarms the watchdog naturally; only a worker that stays silent for
        the full supervision timeout is declared wedged.
        """
        loop = asyncio.get_running_loop()
        while handle.epoch == epoch and handle.outstanding:
            overdue = loop.time() - min(handle.outstanding.values())
            if overdue >= self.policy.task_timeout:
                obs.event("serve.worker.wedged", worker=handle.worker_id)
                if handle in self._workers:
                    self._respawn(handle)
                else:  # pragma: no cover - pool replaced while watching
                    handle.kill()
                return
            await asyncio.sleep(max(self.policy.task_timeout - overdue, 0.005))

    # -- degradation, recovery and generations ------------------------------

    def _degrade(self, reason: str) -> None:
        # The counter and trace event fire on every trigger -- unlike the
        # warning, which is once per server -- so post-hoc inspection sees
        # how often the pool failed, not just that it ever did.
        obs.counter("serve.degraded_total").inc()
        obs.event("serve.degraded", reason=reason)
        if self.degraded:
            return
        self.degraded = True
        warnings.warn(
            DegradedServingWarning(
                f"serving degraded to in-process: {reason}; "
                f"answers remain bit-identical, concurrency is gone until "
                f"the recovery probe revives the pool"
            ),
            stacklevel=2,
        )
        self._start_probe()

    def _start_probe(self) -> None:
        """Launch the background recovery probe (no-op outside a loop)."""
        if self.draining:
            return
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:  # pragma: no cover - constructed outside a loop
            return
        if self._probe_task is None or self._probe_task.done():
            self._probe_task = loop.create_task(self._probe_loop())

    async def _probe_loop(self) -> None:
        """Retry pool construction under exponential backoff until it heals."""
        attempt = 0
        while self.degraded and not self.draining:
            delay = min(self.probe_interval * (2 ** attempt), PROBE_BACKOFF_CAP)
            attempt += 1
            await asyncio.sleep(delay)
            obs.counter("serve.probe_attempts_total").inc()
            try:
                # Fault site: chaos pins the circuit open deterministically.
                fault_point("serve.recovery.probe")
                await self._attempt_recovery()
            except (OSError, MemoryError, asyncio.TimeoutError) as error:
                obs.event("serve.probe_failed", attempt=attempt, reason=repr(error))

    async def _attempt_recovery(self) -> None:
        """One closed→half-open→closed circuit transition attempt.

        Spawns a complete fresh pool, routes a canary request through it
        (the half-open phase), and only then swaps it in and clears the
        degraded flag.  Any failure tears the candidate pool down and
        leaves the circuit open for the next probe.
        """
        fresh: list[_WorkerHandle] = []
        try:
            for worker_id in range(self.num_workers):
                handle = _WorkerHandle(self, worker_id)
                handle.spawn()  # OSError propagates: circuit stays open
                fresh.append(handle)
            # Half-open: one canary request must round-trip before the
            # revived pool sees client traffic.  (2, 1.0) is always valid
            # and near-free: ε=1.0 snaps above every stored boundary.
            self._request_counter += 1
            canary = ("serve", self._request_counter, self.generation, 2, 1.0)
            reply = await fresh[0].request(
                canary, min(self.request_deadline, self.policy.task_timeout)
            )
            if reply is None or reply[0] != "ok":
                raise OSError(f"canary request failed: {reply!r}")
        except BaseException:
            for handle in fresh:
                handle.kill()
            raise
        retired, self._workers = self._workers, fresh
        for handle in retired:
            handle.kill()
        self.degraded = False
        self._recovered_total.inc()
        obs.event("serve.recovered", workers=len(fresh))

    def _serve_in_process(self, mu: int, epsilon: float) -> str:
        self._degraded_requests_total.inc()
        if self._fallback_session is None:
            self._fallback_session = self._index.session(cache_size=self.cache_size)
        try:
            result = self._fallback_session.serve(
                mu, epsilon, deterministic_borders=self.deterministic
            )
        except ValueError as error:
            return wire.format_error(error)
        return wire.format_response(result)

    async def _invalidate(self) -> None:
        """Bump the generation after an on-disk artifact swap.

        The server reloads its own mmap (routing ranks + fallback session)
        immediately; workers reload lazily, on their first request at the
        new generation -- which is every request dispatched after this
        method returns, because the bump happens before the ack is written.
        The fallback-session reset is what keeps the flip honest under
        degradation: the in-process session serves the new artifact too.
        """
        from ..core.index import ScanIndex
        from .snapping import EpsilonSnapper

        self.generation += 1
        self._index = ScanIndex.load(self.artifact_path)
        self._snapper = EpsilonSnapper.from_index(self._index)
        self._fallback_session = None

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Routing, health, admission and generation counters (front-end view)."""
        return {
            "workers": self.num_workers,
            "generation": self.generation,
            "degraded": self.degraded,
            "draining": self.draining,
            "served": self.served,
            "inflight": self._inflight,
            "shed_total": self._requests_shed_total.value,
            "restarts_total": self._restarts_count,
            "request_deadline": self.request_deadline,
            "max_inflight": self.max_inflight,
            "max_queue_depth": self.max_queue_depth,
            "per_worker": [
                {
                    "worker": handle.worker_id,
                    "requests": handle.requests,
                    "restarts": handle.restarts,
                    "queue_depth": handle.queue_depth,
                    "alive": bool(handle.process is not None and handle.process.is_alive()),
                }
                for handle in self._workers
            ],
        }

    async def _gather_from_workers(self, kind: str) -> list:
        """One ``(kind, request_id)`` round trip per live worker, in order.

        Returns the reply payload per worker, ``None`` for a worker that is
        gone or times out -- introspection must never take the tier down,
        so failures degrade to missing data rather than restarts.
        """
        replies = []
        for handle in self._workers:
            if handle.connection is None or handle.dead:
                replies.append(None)
                continue
            self._request_counter += 1
            try:
                reply = await handle.request(
                    (kind, self._request_counter), self.policy.task_timeout
                )
            except (asyncio.TimeoutError, OSError, ValueError):
                reply = None
            replies.append(
                reply[2] if reply is not None and reply[0] == "ok" else None
            )
        return replies

    async def stats_full(self) -> dict:
        """The ``!stats`` answer: front-end counters plus per-worker LRUs.

        Each worker's entry gains an ``lru`` block -- its session's
        served/hit counters and cache stats, fetched over the stats channel
        -- or ``None`` when the worker could not answer.
        """
        stats = self.stats()
        for entry, lru in zip(
            stats["per_worker"], await self._gather_from_workers("stats")
        ):
            entry["lru"] = lru
        return stats

    async def metrics_snapshot(self) -> dict:
        """The ``!metrics`` answer: front-end registry + all worker registries.

        Workers snapshot their own registries (after syncing session
        counters) and the snapshots are folded together with
        :func:`~repro.obs.metrics.merge_snapshots` -- a pure merge over
        copies, so repeated ``!metrics`` calls never double-count.
        """
        if self._fallback_session is not None:
            self._fallback_session.sync_metrics()
        for handle in self._workers:
            obs.gauge(f"serve.queue_depth.worker{handle.worker_id}").set(
                handle.queue_depth
            )
        merged = obs.metrics().snapshot()
        for snapshot in await self._gather_from_workers("metrics"):
            if snapshot is not None:
                merged = merge_snapshots(merged, snapshot)
        return merged
