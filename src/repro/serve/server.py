"""Concurrent serving front end: asyncio socket server over forked workers.

``ClusterServer`` listens on a TCP socket for newline-delimited
``MU:EPSILON`` requests (the exact wire format of the single-session
``repro serve`` loop; see :mod:`repro.serve.wire`) and dispatches each to
one of N forked worker processes.  Every worker holds a
:class:`~repro.serve.session.ClusterSession` over its own mmap of the same
saved artifact, so the answers are bit-identical to single-session serving
at any worker count.

Three contracts define the tier:

Cache affinity
    A request is routed by hashing its snapped ``(μ, ε-rank)`` pair -- the
    session cache key modulo generation -- to a fixed worker, so repeats of
    a setting always land where that setting's LRU entry lives.  Routing is
    deterministic and independent of arrival order or connection.

Supervision (the :mod:`repro.parallel.supervise` contract)
    Each dispatch is bounded by ``policy.task_timeout``; a worker that dies
    or wedges is killed and respawned, and the request is retried up to
    ``policy.retries`` times with exponential backoff.  A pool beyond
    saving -- respawn itself failing -- degrades the server to in-process
    serving over its own session with one structured
    :class:`DegradedServingWarning`; the socket protocol is unchanged.

Generation flips
    The server owns a monotonic artifact generation, bumped by the
    ``!invalidate`` control line (sent after ``repro update`` swaps the
    artifact on disk).  Every request carries the current generation and a
    worker reloads the artifact before answering a newer one, so every
    response acked after the ``!invalidate`` ack reflects the updated
    artifact -- no stale-generation answers, on any worker.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import time
import warnings
from pathlib import Path

from .. import obs
from ..obs.metrics import merge_snapshots
from ..parallel.supervise import DegradedExecutionWarning, SupervisionPolicy
from . import wire
from .worker import worker_main


class DegradedServingWarning(DegradedExecutionWarning):
    """The worker pool could not be kept alive; serving fell back in-process."""


#: Supervision defaults for serving: interactive latencies, so a wedged
#: worker is declared dead far sooner than a batch task would be.
SERVING_POLICY = SupervisionPolicy(task_timeout=30.0, retries=2)


def route(mu: int, rank: int, num_workers: int) -> int:
    """Deterministic worker index for a snapped ``(μ, ε-rank)`` setting.

    A Fibonacci-style integer mix keeps neighbouring settings from mapping
    to the same worker; the result depends only on the setting and the
    worker count, never on arrival order, which is what pins a setting's
    cache entry to one worker.
    """
    return int((mu * 2654435761 + rank * 40503) % num_workers)


class _WorkerHandle:
    """One forked worker process plus its pipe, counters and pending reply."""

    def __init__(self, server: "ClusterServer", worker_id: int) -> None:
        self.server = server
        self.worker_id = worker_id
        self.process = None
        self.connection = None
        self.requests = 0
        self.restarts = 0
        self.lock = asyncio.Lock()
        self._pending: asyncio.Future | None = None

    def spawn(self) -> None:
        """Fork the worker process and register its reply pipe."""
        context = self.server._mp_context
        parent_end, child_end = context.Pipe(duplex=True)
        process = context.Process(
            target=worker_main,
            args=(str(self.server.artifact_path), self.worker_id, child_end),
            kwargs={
                "cache_size": self.server.cache_size,
                "deterministic": self.server.deterministic,
                "generation": self.server.generation,
                "trace_path": self.server._worker_trace_path(self.worker_id),
            },
            daemon=True,
        )
        process.start()
        child_end.close()
        self.process = process
        self.connection = parent_end
        asyncio.get_running_loop().add_reader(parent_end.fileno(), self._on_readable)

    def _on_readable(self) -> None:
        try:
            message = self.connection.recv()
        except (EOFError, OSError):
            message = None
        pending = self._pending
        if pending is not None and not pending.done():
            pending.set_result(message)

    async def request(self, message: tuple, timeout: float):
        """Send one message and await its reply (``None`` = worker died)."""
        loop = asyncio.get_running_loop()
        self._pending = loop.create_future()
        try:
            self.connection.send(message)
            return await asyncio.wait_for(self._pending, timeout)
        finally:
            self._pending = None

    def kill(self) -> None:
        """Tear the worker down unconditionally (restart or shutdown path)."""
        if self.connection is not None:
            try:
                asyncio.get_running_loop().remove_reader(self.connection.fileno())
            except (RuntimeError, OSError):
                pass
            try:
                self.connection.close()
            except OSError:
                pass
            self.connection = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=5.0)
            if self.process.is_alive():  # pragma: no cover - defensive
                self.process.kill()
                self.process.join(timeout=5.0)
            self.process = None

    async def stop(self) -> None:
        """Polite shutdown: ask the loop to exit, then reap the process."""
        stopped = False
        if self.connection is not None:
            try:
                self.connection.send(("stop",))
                stopped = True
            except (OSError, ValueError):
                pass
        if stopped and self.process is not None:
            # Grace period before the unconditional teardown: the worker's
            # exit path syncs its session counters and writes the final
            # trace snapshot, which a premature terminate() would truncate.
            deadline = asyncio.get_running_loop().time() + 2.0
            while (
                self.process.is_alive()
                and asyncio.get_running_loop().time() < deadline
            ):
                await asyncio.sleep(0.01)
        self.kill()


class ClusterServer:
    """Multi-worker serving front end over one saved index artifact."""

    def __init__(
        self,
        artifact_path: str | Path,
        *,
        workers: int = 2,
        cache_size: int = 256,
        deterministic: bool = False,
        policy: SupervisionPolicy | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.artifact_path = Path(artifact_path)
        self.num_workers = int(workers)
        self.cache_size = int(cache_size)
        self.deterministic = bool(deterministic)
        self.policy = policy if policy is not None else SERVING_POLICY
        self.generation = 0
        self.degraded = False
        self.served = 0
        self._mp_context = multiprocessing.get_context("fork")
        self._workers: list[_WorkerHandle] = []
        self._request_counter = 0
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._fallback_session = None
        # The front end's own mmap of the artifact: snapping ranks for the
        # affinity hash, and the in-process fallback when the pool is gone.
        from ..core.index import ScanIndex
        from .snapping import EpsilonSnapper

        self._index = ScanIndex.load(self.artifact_path)
        self._snapper = EpsilonSnapper.from_index(self._index)
        # Metric handles resolved once: the per-request cost of always-on
        # metrics is one clock pair, one histogram bisect, one counter add.
        self._request_seconds = obs.histogram("serve.request_seconds")
        self._requests_total = obs.counter("serve.requests_total")
        self._errors_total = obs.counter("serve.errors_total")
        self._restarts_total = obs.counter("serve.worker_restarts_total")
        self._degraded_requests_total = obs.counter("serve.requests_degraded_total")

    def _worker_trace_path(self, worker_id: int) -> str | None:
        """Per-worker trace file next to the front end's (or ``None``).

        Workers cannot share the front end's JSONL file -- concurrent line
        writes from forked processes interleave -- so worker ``k`` traces
        to ``<front-end-path>.worker<k>``.
        """
        path = obs.tracer().path
        return None if path is None else f"{path}.worker{worker_id}"

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Spawn the workers and start accepting connections.

        Returns the bound ``(host, port)`` (``port=0`` binds an ephemeral
        port, useful for tests and CI).
        """
        for worker_id in range(self.num_workers):
            handle = _WorkerHandle(self, worker_id)
            try:
                handle.spawn()
            except OSError as error:
                self._degrade(f"worker {worker_id} failed to spawn: {error!r}")
                break
            self._workers.append(handle)
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def close(self) -> None:
        """Stop accepting, then stop every worker."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Retire open connection handlers while the loop is still running --
        # tasks alive at loop shutdown surface as CancelledError noise.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        for handle in self._workers:
            await handle.stop()
        self._workers = []

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("server not started")
        await self._server.serve_forever()

    # -- request path ------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line or line.startswith("#"):
                    continue
                if line.startswith(wire.CONTROL_PREFIX):
                    response = await self._handle_control(line)
                else:
                    response = await self._handle_request(line)
                writer.write((response + "\n").encode("utf-8"))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:
            # Cancelled by close(): the connection is being retired, which
            # is an orderly outcome, not an error to propagate.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            # close() without wait_closed(): awaiting the handshake here
            # leaves the handler task parked in the finally when the event
            # loop shuts down, which surfaces as spurious CancelledError
            # noise; the transport finishes closing on its own.
            writer.close()

    async def _handle_control(self, line: str) -> str:
        command = line[len(wire.CONTROL_PREFIX):].strip().lower()
        if command == "invalidate":
            await self._invalidate()
            return f"invalidated generation={self.generation}"
        if command == "stats":
            return json.dumps(await self.stats_full(), sort_keys=True)
        if command == "metrics":
            return json.dumps(await self.metrics_snapshot(), sort_keys=True)
        return wire.format_error(f"unknown control command {line!r}")

    async def _handle_request(self, line: str) -> str:
        started = time.perf_counter()
        try:
            mu, epsilon = wire.parse_request(line)
            if mu < 2:
                raise ValueError(f"mu must be at least 2, got {mu}")
            if not 0.0 <= epsilon <= 1.0:
                raise ValueError(f"epsilon must lie in [0, 1], got {epsilon}")
        except ValueError as error:
            self._errors_total.inc()
            return wire.format_error(error)
        self.served += 1
        self._requests_total.inc()
        if self.degraded:
            response = self._serve_in_process(mu, epsilon)
            self._request_seconds.observe(time.perf_counter() - started)
            return response
        rank = self._snapper.rank(epsilon)
        worker_index = route(mu, rank, len(self._workers))
        handle = self._workers[worker_index]
        # Unconditional span: on this path one shared no-op context manager
        # is noise against the pipe round trip, so no obs.on() gate needed.
        with obs.span("serve.request", mu=mu, rank=rank, worker=worker_index):
            response = await self._dispatch(handle, mu, epsilon)
        self._request_seconds.observe(time.perf_counter() - started)
        return response

    async def _dispatch(self, handle: _WorkerHandle, mu: int, epsilon: float) -> str:
        policy = self.policy
        attempts = 1 + max(policy.retries, 0)
        async with handle.lock:
            for attempt in range(1, attempts + 1):
                self._request_counter += 1
                message = (
                    "serve", self._request_counter, self.generation, mu, epsilon,
                )
                try:
                    reply = await handle.request(message, policy.task_timeout)
                except (asyncio.TimeoutError, OSError, ValueError):
                    reply = None
                if reply is not None and reply[0] in ("ok", "error"):
                    handle.requests += 1
                    if reply[0] == "error":
                        return wire.format_error(reply[2])
                    return reply[2]
                # Dead, wedged, or unreadable: tear down and respawn, then
                # retry the request on the fresh worker (the session state
                # is cache only, so a retry is always safe).
                handle.kill()
                try:
                    handle.spawn()
                    handle.restarts += 1
                    self._restarts_total.inc()
                    obs.event(
                        "serve.worker.restart",
                        worker=handle.worker_id,
                        attempt=attempt,
                    )
                except OSError as error:
                    self._degrade(
                        f"worker {handle.worker_id} could not be respawned: {error!r}"
                    )
                    return self._serve_in_process(mu, epsilon)
                if attempt < attempts:
                    await asyncio.sleep(policy.backoff(attempt))
        # The pool cannot produce an answer within policy; keep the tier
        # alive by answering in-process (a per-request degrade, not a flip).
        return self._serve_in_process(mu, epsilon)

    # -- degradation and generations ---------------------------------------

    def _degrade(self, reason: str) -> None:
        # The counter and trace event fire on every trigger -- unlike the
        # warning, which is once per server -- so post-hoc inspection sees
        # how often the pool failed, not just that it ever did.
        obs.counter("serve.degraded_total").inc()
        obs.event("serve.degraded", reason=reason)
        if self.degraded:
            return
        self.degraded = True
        warnings.warn(
            DegradedServingWarning(
                f"serving degraded to in-process: {reason}; "
                f"answers remain bit-identical, concurrency is gone"
            ),
            stacklevel=2,
        )

    def _serve_in_process(self, mu: int, epsilon: float) -> str:
        self._degraded_requests_total.inc()
        if self._fallback_session is None:
            self._fallback_session = self._index.session(cache_size=self.cache_size)
        try:
            result = self._fallback_session.serve(
                mu, epsilon, deterministic_borders=self.deterministic
            )
        except ValueError as error:
            return wire.format_error(error)
        return wire.format_response(result)

    async def _invalidate(self) -> None:
        """Bump the generation after an on-disk artifact swap.

        The server reloads its own mmap (routing ranks + fallback session)
        immediately; workers reload lazily, on their first request at the
        new generation -- which is every request dispatched after this
        method returns, because the bump happens before the ack is written.
        """
        from ..core.index import ScanIndex
        from .snapping import EpsilonSnapper

        self.generation += 1
        self._index = ScanIndex.load(self.artifact_path)
        self._snapper = EpsilonSnapper.from_index(self._index)
        self._fallback_session = None

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Routing, health and generation counters (front-end view only)."""
        return {
            "workers": self.num_workers,
            "generation": self.generation,
            "degraded": self.degraded,
            "served": self.served,
            "restarts_total": sum(handle.restarts for handle in self._workers),
            "per_worker": [
                {
                    "worker": handle.worker_id,
                    "requests": handle.requests,
                    "restarts": handle.restarts,
                    "alive": bool(handle.process is not None and handle.process.is_alive()),
                }
                for handle in self._workers
            ],
        }

    async def _gather_from_workers(self, kind: str) -> list:
        """One ``(kind, request_id)`` round trip per live worker, in order.

        Returns the reply payload per worker, ``None`` for a worker that is
        gone or times out -- introspection must never take the tier down,
        so failures degrade to missing data rather than restarts.
        """
        replies = []
        for handle in self._workers:
            if handle.connection is None:
                replies.append(None)
                continue
            async with handle.lock:
                self._request_counter += 1
                try:
                    reply = await handle.request(
                        (kind, self._request_counter), self.policy.task_timeout
                    )
                except (asyncio.TimeoutError, OSError, ValueError):
                    reply = None
            replies.append(
                reply[2] if reply is not None and reply[0] == "ok" else None
            )
        return replies

    async def stats_full(self) -> dict:
        """The ``!stats`` answer: front-end counters plus per-worker LRUs.

        Each worker's entry gains an ``lru`` block -- its session's
        served/hit counters and cache stats, fetched over the stats channel
        -- or ``None`` when the worker could not answer.
        """
        stats = self.stats()
        for entry, lru in zip(
            stats["per_worker"], await self._gather_from_workers("stats")
        ):
            entry["lru"] = lru
        return stats

    async def metrics_snapshot(self) -> dict:
        """The ``!metrics`` answer: front-end registry + all worker registries.

        Workers snapshot their own registries (after syncing session
        counters) and the snapshots are folded together with
        :func:`~repro.obs.metrics.merge_snapshots` -- a pure merge over
        copies, so repeated ``!metrics`` calls never double-count.
        """
        if self._fallback_session is not None:
            self._fallback_session.sync_metrics()
        merged = obs.metrics().snapshot()
        for snapshot in await self._gather_from_workers("metrics"):
            if snapshot is not None:
                merged = merge_snapshots(merged, snapshot)
        return merged
