"""Wire protocol shared by every serving front end.

One request per line, ``MU:EPSILON`` (or whitespace-separated), answered by
one response line -- the exact format of the single-session ``repro serve``
stdin loop, so a network client cannot tell which tier answered beyond the
``cache=`` disposition field (which is per-worker state, not part of the
clustering answer; :func:`strip_cache_field` removes it before bit-identity
comparisons).

Control lines start with ``!`` and never reach the clustering path:

``!stats``
    One JSON object describing the serving tier (worker routing counts,
    restarts -- per worker and ``restarts_total`` --, generation,
    degradation state, and each worker's ``lru`` hit/miss block).
``!metrics``
    One JSON metrics snapshot -- the front end's registry merged with
    every worker's (request latency histograms, cache hit/miss/eviction
    counters, restart and degradation totals); see
    :func:`repro.obs.metrics.merge_snapshots` for the merge contract.
``!invalidate``
    Bump the server's artifact generation: every worker reloads the
    artifact before answering its next request.  Acked with
    ``invalidated generation=G``.
``!drain``
    Begin a graceful drain: stop accepting connections, let in-flight
    requests finish inside the drain deadline, flush worker metric
    snapshots, shut the pool down.  Acked with ``draining deadline=S``.

Errors are reported inline as ``error: <reason>`` lines (the stdin loop
prints them to stderr instead; a socket has only one channel back).  Two
structured reasons are part of the protocol: ``error: overloaded (shed)``
(admission control refused the request; retry later or elsewhere) and
``error: request line too long`` (the request exceeded the 64 KiB line
limit; the connection survives).  Control lines bypass admission control,
so an overloaded server still answers ``!stats``/``!metrics``/``!drain``.
"""

from __future__ import annotations

from .session import ServedResult

#: Prefix of control lines.
CONTROL_PREFIX = "!"
#: Prefix of inline error responses.
ERROR_PREFIX = "error: "
#: The trailing per-worker disposition field, excluded from bit-identity.
CACHE_FIELD_SEPARATOR = " cache="


def parse_request(line: str) -> tuple[int, float]:
    """Parse one serve request line (``MU:EPSILON`` or ``MU EPSILON``)."""
    token = line.replace(":", " ").split()
    if len(token) != 2:
        raise ValueError(f"expected MU:EPSILON, got {line.strip()!r}")
    return int(token[0]), float(token[1])


def format_response(result: ServedResult) -> str:
    """The response line for one served result (no trailing newline).

    Identical to the single-session ``repro serve`` output; every field
    before ``cache=`` is a pure function of the artifact and the request.
    """
    snapped = result.snapped_epsilon
    return (
        f"mu={result.mu} epsilon={result.epsilon:g} "
        f"snapped={'none' if snapped == float('inf') else format(snapped, '.6g')} "
        f"clusters={result.num_clusters} "
        f"clustered={result.num_clustered_vertices} "
        f"cores={result.num_cores} "
        f"cache={'hit' if result.from_cache else 'miss'}"
    )


def format_error(error: Exception | str) -> str:
    """The inline error line for a rejected request."""
    return f"{ERROR_PREFIX}{error}"


def strip_cache_field(line: str) -> str:
    """Drop the ``cache=`` disposition, keeping the comparable answer."""
    head, separator, _ = line.partition(CACHE_FIELD_SEPARATOR)
    return head if separator else line
