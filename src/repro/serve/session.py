"""The label-recycling query serving loop: :class:`ClusterSession`.

A :class:`~repro.core.index.ScanIndex` answers any ``(μ, ε)`` query cheaply,
but the cold :meth:`~repro.core.index.ScanIndex.query` path still pays O(n)
per call -- a dense label array, a dense core mask and a fresh union-find
forest are allocated and initialised for every query regardless of how small
the answer is.  A :class:`ClusterSession` is the persistent per-process
serving loop that removes that tax:

* **Recycled buffers.**  The session owns one
  :class:`~repro.core.query.QueryBuffers` -- union-find forest, label
  scratch, membership masks -- allocated once at index size.  Each served
  query uses them and restores every touched entry before returning
  (:meth:`~repro.parallel.unionfind.UnionFind.reset_batch`), so steady-state
  queries allocate O(result), not O(n).
* **ε-snapping.**  Thresholds are canonicalized by an
  :class:`~repro.serve.snapping.EpsilonSnapper` before cache lookup, so any
  two ε values that select identical similarity prefixes share one cache
  entry.
* **Result caching.**  A bounded LRU (:class:`~repro.serve.cache.
  ResultCache`) keyed by ``(generation, μ, ε-rank, border-mode)`` holds
  compact label payloads; repeats of a hot ``(μ, ε)`` are answered without
  touching the index at all.  Batched sweeps (:meth:`ClusterSession.
  query_many`) route through the same cache: hits are materialised from
  cached payloads, misses run as one planned batch and are admitted.
* **Update safety.**  Generation tokens live in a registry shared by every
  session over one index, read on *every* request -- so an
  :meth:`~repro.core.index.ScanIndex.apply_updates` mutation (or any
  session's :meth:`ClusterSession.invalidate`) makes all of them miss at
  once, and the mutation-epoch check rebuilds stale ε-snappers
  automatically.  A served result can never mix pre- and post-update
  state.

Results come back as :class:`ServedResult` -- a *compact* clustering listing
only the clustered vertices and their labels -- and materialise to a dense
:class:`~repro.core.clustering.Clustering` on demand
(:meth:`ServedResult.to_clustering`).  Served answers, cached or not, are
bit-identical to cold :meth:`ScanIndex.query
<repro.core.index.ScanIndex.query>` calls in both border modes; the
property tests in ``tests/serve/`` enforce this over randomized query
streams.  The session is deliberately the narrow seam -- one index, one
buffer set, sequential serves -- that a future sharded or async front end
would hold one of per worker.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .. import obs
from ..core.clustering import UNCLUSTERED, Clustering
from ..core.query import (
    QueryBuffers,
    _epsilon_similar_arcs,
    get_cores,
    resolve_border_assignments,
)
from ..parallel.metrics import ceil_log2
from ..parallel.scheduler import Scheduler
from .cache import ResultCache
from .snapping import EpsilonSnapper

__all__ = [
    "ClusterSession",
    "CompactLabels",
    "ServedResult",
    "invalidate_index_generations",
]


def invalidate_index_generations(index) -> None:
    """Re-key every serving generation bound to ``index`` and bump its epoch.

    The shared staleness epilogue of :meth:`ScanIndex.apply_updates
    <repro.core.index.ScanIndex.apply_updates>` and
    :meth:`ClusterSession.invalidate`: afterwards no session over ``index``
    -- whatever cache it holds -- can serve a pre-mutation entry, and each
    session rebuilds its ε-snapper on its next request (the memoized one is
    dropped here so that rebuild happens at most once per mutation).
    """
    index._mutation_epoch = getattr(index, "_mutation_epoch", 0) + 1
    index.__dict__.pop("_epsilon_snapper", None)
    registry = getattr(index, "_serve_generations", None)
    if registry is not None:
        for cache in list(registry):
            registry[cache] = cache.new_generation()

_EMPTY_IDS = np.zeros(0, dtype=np.int64)


def _materialise_dense(compact, num_vertices: int, mu: int, epsilon: float):
    """Dense :class:`Clustering` from a compact payload (the one O(n) step).

    Shared by :meth:`ServedResult.to_clustering` and the sweep cache-hit
    path, so served results and cached sweep answers can never diverge.
    """
    labels = np.full(num_vertices, UNCLUSTERED, dtype=np.int64)
    labels[compact.vertices] = compact.labels
    core_mask = np.zeros(num_vertices, dtype=bool)
    core_mask[compact.vertices[: compact.num_cores]] = True
    return Clustering(labels, core_mask, mu=mu, epsilon=epsilon)


def _shared_snapper(index) -> EpsilonSnapper:
    """The index's memoized :class:`EpsilonSnapper` (built on first use).

    Building a snapper reads and sorts the similarity columns once
    (O(m log m)); memoizing it on the index means every session opened over
    one loaded artifact in a process shares that single pass.
    """
    snapper = getattr(index, "_epsilon_snapper", None)
    if snapper is None:
        snapper = EpsilonSnapper(index.neighbor_order, index.core_order)
        index._epsilon_snapper = snapper
    return snapper


def _bind_generation(index, cache: ResultCache) -> int:
    """Generation token for serving ``index`` through ``cache``.

    Sessions over the *same index object* and the same cache share one
    token -- and therefore share cache entries -- while any other index
    bound to the cache gets a token of its own, so entries can never cross
    indexes.  The registry lives on the index and holds the cache weakly:
    it dies with either side, and because tokens are never reused a
    recycled cache id cannot resurrect an old binding.
    """
    registry = getattr(index, "_serve_generations", None)
    if registry is None:
        registry = weakref.WeakKeyDictionary()
        index._serve_generations = registry
    token = registry.get(cache)
    if token is None:
        token = cache.new_generation()
        registry[cache] = token
    return token


@dataclass(frozen=True)
class CompactLabels:
    """The cacheable core of a served clustering: clustered vertices only.

    ``vertices`` lists the clustered vertex ids -- the cores first
    (``vertices[:num_cores]``), then the borders -- and ``labels`` the
    cluster id of each, aligned.  Arrays are frozen (numpy read-only flag)
    before entering the cache so a shared payload can never be mutated by
    one reader under another.
    """

    vertices: np.ndarray
    labels: np.ndarray
    num_cores: int
    num_clusters: int

    @classmethod
    def freeze(
        cls,
        vertices: np.ndarray,
        labels: np.ndarray,
        num_cores: int,
        num_clusters: int | None = None,
    ) -> "CompactLabels":
        vertices.setflags(write=False)
        labels.setflags(write=False)
        if num_clusters is None:
            # Counted once at freeze time so cache hits never re-sort labels.
            # Callers that hold the core labels pass the count instead: a
            # cluster's representative is a core labelled with its own id
            # (batch unions hook to the minimum core id of the component),
            # so counting label==id cores is O(cores) with no sort -- the
            # np.unique here is only the fallback for foreign payloads.
            num_clusters = int(np.unique(labels).shape[0]) if labels.shape[0] else 0
        return cls(
            vertices=vertices,
            labels=labels,
            num_cores=num_cores,
            num_clusters=num_clusters,
        )


@dataclass(frozen=True)
class ServedResult:
    """One served ``(μ, ε)`` answer: compact labels plus request metadata.

    Attributes
    ----------
    mu, epsilon:
        The parameters as requested (ε *before* snapping, so materialised
        clusterings carry the caller's value).
    snapped_epsilon:
        The boundary ε resolves to (see :class:`~repro.serve.snapping.
        EpsilonSnapper.snap`); ``inf`` when ε exceeds every stored
        similarity.
    compact:
        The shared (possibly cached) :class:`CompactLabels` payload.
    deterministic_borders:
        Border-attachment mode the answer was computed under.
    from_cache:
        Whether this serve was answered from the result cache.
    """

    mu: int
    epsilon: float
    snapped_epsilon: float
    compact: CompactLabels
    num_vertices: int
    deterministic_borders: bool
    from_cache: bool

    @property
    def vertices(self) -> np.ndarray:
        """Clustered vertex ids (cores first, then borders)."""
        return self.compact.vertices

    @property
    def labels(self) -> np.ndarray:
        """Cluster label of each entry of :attr:`vertices`."""
        return self.compact.labels

    @property
    def num_cores(self) -> int:
        """Number of core vertices (the leading entries of :attr:`vertices`)."""
        return self.compact.num_cores

    @property
    def num_clustered_vertices(self) -> int:
        """Number of vertices assigned to some cluster."""
        return int(self.compact.vertices.shape[0])

    @property
    def num_clusters(self) -> int:
        """Number of distinct clusters (precomputed; O(1) on cache hits)."""
        return self.compact.num_clusters

    def to_clustering(self) -> Clustering:
        """Materialise the dense :class:`~repro.core.clustering.Clustering`.

        The dense form is bit-identical to what the cold query path returns
        for the same parameters and border mode.  This is the only O(n) step
        of the serving path; callers that only need cluster counts or member
        lists can stay compact.
        """
        return _materialise_dense(
            self.compact, self.num_vertices, self.mu, self.epsilon
        )


class ClusterSession:
    """A persistent serving loop over one loaded :class:`ScanIndex`.

    Parameters
    ----------
    index:
        The index to serve; typically a loaded artifact
        (:meth:`ScanIndex.load <repro.core.index.ScanIndex.load>`).
    cache_size:
        Capacity of the session-owned LRU result cache; zero or negative
        disables caching (recycled buffers still apply).  Ignored when
        ``cache`` is given.
    cache:
        An externally owned :class:`~repro.serve.cache.ResultCache` to
        share between sessions.  Sessions over the *same index object*
        share a cache generation -- and therefore each other's entries --
        while sessions over any other index bind a generation of their
        own, so one index's entries can never be served for another (nor
        for this session after :meth:`invalidate`).

    Open one via :meth:`ScanIndex.session()
    <repro.core.index.ScanIndex.session>`::

        index = ScanIndex.load("my.scanidx")
        session = index.session()
        result = session.serve(5, 0.6)          # compact, cached
        clustering = session.query(5, 0.6)      # dense Clustering
    """

    def __init__(
        self,
        index,
        *,
        cache_size: int = 256,
        cache: ResultCache | None = None,
    ) -> None:
        self.index = index
        self.num_vertices = int(index.graph.num_vertices)
        self.buffers = QueryBuffers(self.num_vertices)
        self.snapper = _shared_snapper(index)
        if cache is not None:
            self.cache: ResultCache | None = cache
        elif cache_size > 0:
            self.cache = ResultCache(cache_size)
        else:
            self.cache = None
        # NB: an empty ResultCache is falsy (__len__ == 0) -- test identity.
        if self.cache is not None:
            _bind_generation(index, self.cache)
        # Mutations (ScanIndex.apply_updates) bump the index's epoch; the
        # session compares on every request and self-invalidates, so stale
        # snapper boundaries or cache entries are never consulted.
        self._index_epoch = getattr(index, "_mutation_epoch", 0)
        self.scheduler = Scheduler()
        self.served = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    # Staleness guards
    # ------------------------------------------------------------------
    def _generation_token(self) -> int:
        """The *current* generation for this session's cache over this index.

        Read from the index's shared registry on every request rather than
        memoized at construction: any party that bumps the registry --
        :meth:`invalidate` on a sibling session, or the index's own
        ``apply_updates`` -- immediately makes every session bound to that
        (index, cache) pair miss, which is the staleness guarantee.
        """
        token = getattr(self.index, "_serve_generations", {}).get(self.cache)
        if token is None:  # registry dropped (e.g. index swapped) -- rebind
            token = _bind_generation(self.index, self.cache)
        return token

    def _refresh_if_mutated(self) -> None:
        """Resync with the index when it was mutated since the last request.

        ``apply_updates`` already re-keyed the shared generations, so this
        only rebuilds the session-local state (ε-snapper, buffers, epoch)
        -- bumping the generation *again* here would discard post-update
        entries a sibling session cached moments earlier.
        """
        if getattr(self.index, "_mutation_epoch", 0) != self._index_epoch:
            self._resync_with_index()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(
        self, mu: int, epsilon: float, *, deterministic_borders: bool = False
    ) -> ServedResult:
        """Answer one ``(μ, ε)`` query from cache or the recycled-buffer path.

        The cache key is ``(generation, μ, rank(ε), border-mode)`` with
        ``rank`` the ε-snapping rank, so a hit requires only the O(log m)
        snap and a dict lookup.  On a miss the clustering is computed with
        the session's recycled buffers and the compact payload is cached.
        Either way the answer is bit-identical to a cold
        :meth:`ScanIndex.query <repro.core.index.ScanIndex.query>`.
        """
        mu = int(mu)
        epsilon = float(epsilon)
        if mu < 2:
            raise ValueError(f"mu must be at least 2, got {mu}")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must lie in [0, 1], got {epsilon}")
        self._refresh_if_mutated()
        rank = self.snapper.rank(epsilon)
        deterministic_borders = bool(deterministic_borders)
        generation = self._generation_token() if self.cache is not None else 0
        key = (generation, mu, rank, deterministic_borders)
        compact = self.cache.get(key) if self.cache is not None else None
        from_cache = compact is not None
        if compact is None:
            # Tracing is gated on obs.on() (not just hidden behind the null
            # tracer) so the disabled serve path is byte-for-byte the
            # pre-instrumentation code: no span object, no attr dict.
            if obs.on():
                with obs.span("serve.session.compute", mu=mu, rank=rank):
                    compact = self._compute_compact(
                        mu, epsilon, deterministic_borders
                    )
            else:
                compact = self._compute_compact(mu, epsilon, deterministic_borders)
            if self.cache is not None:
                self.cache.put(key, compact)
        elif obs.on():
            obs.event("serve.session.cache_hit", mu=mu, rank=rank)
        self.served += 1
        self.cache_hits += int(from_cache)
        return ServedResult(
            mu=mu,
            epsilon=epsilon,
            snapped_epsilon=self.snapper.snap_at(rank),
            compact=compact,
            num_vertices=self.num_vertices,
            deterministic_borders=deterministic_borders,
            from_cache=from_cache,
        )

    def serve_many(
        self,
        pairs: Iterable[tuple[int, float]],
        *,
        deterministic_borders: bool = False,
    ) -> list[ServedResult]:
        """Serve a stream of pairs through the cache, one :meth:`serve` each.

        Unlike :meth:`query_many` this routes every request through the
        result cache, which is what a repeated-workload serving loop wants;
        use :meth:`query_many` for one-shot sweeps over mostly distinct
        settings, where the batched planner's shared probes win instead.
        """
        return [
            self.serve(mu, epsilon, deterministic_borders=deterministic_borders)
            for mu, epsilon in pairs
        ]

    def query(
        self, mu: int, epsilon: float, *, deterministic_borders: bool = False
    ) -> Clustering:
        """Serve and materialise a dense clustering (cold-path compatible)."""
        return self.serve(
            mu, epsilon, deterministic_borders=deterministic_borders
        ).to_clustering()

    def query_many(
        self,
        pairs: Iterable[tuple[int, float]],
        *,
        deterministic_borders: bool = False,
    ) -> list[Clustering]:
        """Batched sweep through the result cache and the recycled buffers.

        Every pair is first snapped and looked up in the session's result
        cache -- a sweep that repeats earlier traffic (or repeats itself)
        is answered from cached compact payloads.  The remaining misses run
        as **one** planned batch through the multi-parameter planner
        (:func:`repro.core.sweep_query.query_many`) on this session's
        :class:`~repro.core.query.QueryBuffers`, and their compact payloads
        are admitted to the cache, so a later :meth:`serve` of the same
        setting hits.  Results are dense clusterings in input order,
        bit-identical to cold calls; with caching disabled the planner
        handles everything exactly as before.
        """
        from ..core.sweep_query import query_many as _query_many

        pairs = list(pairs)
        self._refresh_if_mutated()
        if self.cache is None:
            self.served += len(pairs)
            return _query_many(
                self.index.graph,
                self.index.neighbor_order,
                self.index.core_order,
                pairs,
                scheduler=self.scheduler,
                deterministic_borders=deterministic_borders,
                buffers=self.buffers,
            )

        deterministic_borders = bool(deterministic_borders)
        generation = self._generation_token()
        results: list[Clustering | None] = [None] * len(pairs)
        misses: dict[tuple, list[int]] = {}
        for position, (mu, epsilon) in enumerate(pairs):
            mu = int(mu)
            epsilon = float(epsilon)
            if mu < 2:
                raise ValueError(f"mu must be at least 2, got {mu}")
            if not 0.0 <= epsilon <= 1.0:
                raise ValueError(f"epsilon must lie in [0, 1], got {epsilon}")
            key = (generation, mu, self.snapper.rank(epsilon), deterministic_borders)
            compact = self.cache.get(key)
            self.served += 1
            if compact is not None:
                self.cache_hits += 1
                results[position] = self._materialise(compact, mu, epsilon)
            else:
                # Distinct snapped keys only: duplicates (and ε values that
                # snap together) ride along with the first occurrence.
                misses.setdefault(key, []).append(position)
        if misses:
            representatives = [pairs[positions[0]] for positions in misses.values()]
            clusterings = _query_many(
                self.index.graph,
                self.index.neighbor_order,
                self.index.core_order,
                representatives,
                scheduler=self.scheduler,
                deterministic_borders=deterministic_borders,
                buffers=self.buffers,
            )
            for (key, positions), clustering in zip(misses.items(), clusterings):
                compact = self._admit(clustering)
                self.cache.put(key, compact)
                results[positions[0]] = clustering
                for position in positions[1:]:
                    mu, epsilon = pairs[position]
                    results[position] = self._materialise(
                        compact, int(mu), float(epsilon)
                    )
        return results  # type: ignore[return-value]

    def _admit(self, clustering: Clustering) -> CompactLabels:
        """Compact a planner result into the exact payload :meth:`serve` caches.

        Cores are listed in their ``CO[μ]``-prefix order (recovered with one
        doubling search) and borders ascending, matching
        :meth:`_compute_compact` bit for bit -- so entries admitted by a
        sweep and entries cached by single serves are interchangeable.
        """
        cores = get_cores(
            self.index.core_order,
            clustering.mu,
            clustering.epsilon,
            scheduler=self.scheduler,
        )
        clustered = clustering.labels != UNCLUSTERED
        borders = np.flatnonzero(clustered & ~clustering.core_mask)
        core_labels = clustering.labels[cores]
        return CompactLabels.freeze(
            np.concatenate([cores, borders]),
            np.concatenate([core_labels, clustering.labels[borders]]),
            int(cores.size),
            num_clusters=int(np.count_nonzero(core_labels == cores)),
        )

    def _materialise(
        self, compact: CompactLabels, mu: int, epsilon: float
    ) -> Clustering:
        """Dense clustering from a compact payload (the cache-hit path)."""
        return _materialise_dense(compact, self.num_vertices, mu, epsilon)

    # ------------------------------------------------------------------
    # Cache lifecycle
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Bump the serving generation after the index contents changed.

        Called automatically when :meth:`ScanIndex.apply_updates
        <repro.core.index.ScanIndex.apply_updates>` mutated the index (the
        session detects the epoch bump on its next request); call it
        yourself after replacing the index contents by hand (e.g. the
        artifact was rebuilt on disk and reloaded in place).  The bump
        lands in the index's *shared* generation registry, so every
        session bound to the same (index, cache) pair -- not just this one
        -- misses from now on; old entries never match the new generation
        and the LRU bound reclaims their slots as traffic arrives.  The
        ε-snapper is rebuilt from the (possibly changed) similarity
        columns and the buffers are resized if the vertex count changed.
        """
        if self.cache is not None:
            _bind_generation(self.index, self.cache)   # ensure registered
        # Re-key EVERY cache bound to this index, not just this session's,
        # and bump the epoch so siblings resync their snappers: the
        # guarantee is that no session -- whatever cache it holds -- serves
        # pre-invalidation entries.  Same epilogue as apply_updates.
        invalidate_index_generations(self.index)
        self._resync_with_index()

    def _resync_with_index(self) -> None:
        """Rebuild session-local state from the index's current contents."""
        self.snapper = _shared_snapper(self.index)
        self._index_epoch = getattr(self.index, "_mutation_epoch", 0)
        n = int(self.index.graph.num_vertices)
        if n != self.num_vertices:
            self.num_vertices = n
            self.buffers = QueryBuffers(n)

    def stats(self) -> dict:
        """Serving counters: serves, hits, hit rate, and cache stats."""
        return {
            "served": self.served,
            "cache_hits": self.cache_hits,
            "hit_rate": self.cache_hits / self.served if self.served else 0.0,
            "cache": self.cache.stats() if self.cache is not None else None,
        }

    def sync_metrics(self, registry=None) -> None:
        """Copy this session's counters into a metrics registry.

        The hot serve path keeps its cheap Python attributes (``served``,
        ``cache_hits``, the cache's own counters); this sync happens only
        at snapshot time (``!metrics``, a worker's final trace snapshot),
        so per-request overhead with instrumentation disabled stays zero.
        Counter *values are assigned*, not incremented: syncing twice is
        idempotent.
        """
        registry = registry if registry is not None else obs.metrics()
        registry.counter("serve.session.served_total").value = self.served
        registry.counter("serve.cache.hits_total").value = self.cache_hits
        if self.cache is not None:
            cache_stats = self.cache.stats()
            registry.counter("serve.cache.misses_total").value = cache_stats[
                "misses"
            ]
            registry.counter("serve.cache.evictions_total").value = cache_stats[
                "evictions"
            ]
            registry.gauge("serve.cache.size").set(cache_stats["size"])

    # ------------------------------------------------------------------
    # The recycled-buffer compute path
    # ------------------------------------------------------------------
    def _compute_compact(
        self, mu: int, epsilon: float, deterministic_borders: bool
    ) -> CompactLabels:
        """Cold compute of one query using only recycled O(n) scratch.

        Mirrors :func:`repro.core.query.cluster` step for step -- same core
        prefix, same arc gather, same union order, same border rule -- but
        writes into the session's buffers and emits the compact form.  Every
        buffer entry touched is restored before returning, which is what
        keeps steady-state allocation proportional to the result.
        """
        scheduler = self.scheduler
        neighbor_order = self.index.neighbor_order
        cores = get_cores(self.index.core_order, mu, epsilon, scheduler=scheduler)
        if cores.size == 0:
            return CompactLabels.freeze(_EMPTY_IDS, _EMPTY_IDS, 0, num_clusters=0)
        # The gather lands in the session's recycled arc buffers: the views
        # below stay valid for the rest of this request only, and a cold
        # miss allocates O(cores) search scratch instead of O(result) arrays.
        arc_sources, arc_targets, arc_similarities = _epsilon_similar_arcs(
            neighbor_order, cores, epsilon, scheduler, buffers=self.buffers
        )

        # Core-core connectivity on the recycled forest (identity between
        # queries).  Each buffer restore runs in a finally: a request that
        # dies mid-serve (e.g. KeyboardInterrupt in a long-lived front end
        # that keeps the session) must not poison later queries.
        member = self.buffers.member
        try:
            # The write sits inside the try: clearing entries that were
            # never set is a no-op, so the restore is safe from any point.
            member[cores] = True
            if self.buffers.arc_flags is not None and arc_targets.size:
                # mode="clip" keeps the gather scratch-free; targets are
                # vertex ids, in-bounds by construction.
                core_to_core = np.take(
                    member,
                    arc_targets,
                    out=self.buffers.arc_flags[: arc_targets.size],
                    mode="clip",
                )
            else:
                core_to_core = member[arc_targets]
        finally:
            member[cores] = False
        cc_sources = arc_sources[core_to_core]
        cc_targets = arc_targets[core_to_core]
        forest = self.buffers.forest
        try:
            forest.union_batch(scheduler, cc_sources, cc_targets)
            core_labels = forest.find_batch(scheduler, cores)
        finally:
            forest.reset_batch(cc_sources, cc_targets, cores)

        # Border attachment, resolved compactly: the label scratch holds the
        # core labels only long enough to translate winning arcs.
        border_arcs = ~core_to_core
        border_targets = arc_targets[border_arcs]
        scheduler.charge(
            int(border_targets.size),
            ceil_log2(max(int(border_targets.size), 1)) + 1.0,
        )
        if border_targets.size:
            border_sources = arc_sources[border_arcs]
            border_vertices, winners = resolve_border_assignments(
                border_sources,
                border_targets,
                arc_similarities[border_arcs],
                deterministic=deterministic_borders,
            )
            scratch = self.buffers.labels
            try:
                scratch[cores] = core_labels
                border_labels = scratch[border_sources[winners]]
            finally:
                scratch[cores] = UNCLUSTERED
        else:
            border_vertices = _EMPTY_IDS
            border_labels = _EMPTY_IDS
        return CompactLabels.freeze(
            np.concatenate([cores, border_vertices]),
            np.concatenate([core_labels, border_labels]),
            int(cores.size),
            # Representatives label themselves (min-id hooking), so the
            # cluster count is an O(cores) compare, not a sort.
            num_clusters=int(np.count_nonzero(core_labels == cores)),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cache = repr(self.cache) if self.cache is not None else "disabled"
        return (
            f"ClusterSession(n={self.num_vertices}, served={self.served}, "
            f"cache={cache})"
        )
