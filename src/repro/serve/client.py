"""Minimal blocking client for the concurrent serving tier.

One TCP connection, one request line out, one response line back -- the
client never pipelines, so response ``i`` always answers request ``i``.
Used by the replay benchmarks (``benchmarks/bench_serve_concurrent.py``,
``benchmarks/bench_serve_resilience.py``), the ``repro serve-client`` CLI,
the CI serving jobs, and the server tests; thread-safe only in the
one-client-per-thread sense (open one :class:`ServeClient` per thread).

Failure contract: raw socket errors (``socket.timeout``,
``ConnectionResetError``, a server that closed the connection mid-read)
never escape as bare OS errors.  They are wrapped in
:class:`ServeClientError`, which carries the server's ``host:port`` and
the request line that was pending, so a replay driver can log exactly
which request died where.  Serve requests are idempotent (pure functions
of the artifact), so the client optionally retries them through a bounded
reconnect (``retries=``); control lines (``!invalidate``, ``!drain``) are
*not* idempotent and are never retried.
"""

from __future__ import annotations

import socket

__all__ = ["ServeClient", "ServeClientError", "replay"]


class ServeClientError(ConnectionError):
    """A request failed at the transport layer, with its context attached."""

    def __init__(self, message: str, *, host: str, port: int,
                 request_line: str | None = None) -> None:
        where = f"{host}:{port}"
        if request_line is not None:
            where += f", request {request_line!r}"
        super().__init__(f"{message} ({where})")
        self.host = host
        self.port = port
        self.request_line = request_line


class ServeClient:
    """Line-oriented blocking client over one TCP connection.

    ``timeout`` bounds every socket operation; ``retries`` allows that
    many reconnect-and-resend attempts for idempotent (non-control)
    request lines before :class:`ServeClientError` is raised.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 60.0,
                 retries: int = 0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = max(int(retries), 0)
        self._sock = None
        self._reader = None
        self._connect()

    def _connect(self) -> None:
        self._close_socket()
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as error:
            raise ServeClientError(
                f"cannot connect: {error}", host=self.host, port=self.port
            ) from error
        self._reader = self._sock.makefile("r", encoding="utf-8", newline="\n")

    def _close_socket(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def request(self, line: str) -> str:
        """Send one request line and return its response line (stripped).

        An idempotent request (anything but a ``!`` control line) is
        retried over a fresh connection up to ``retries`` times; transport
        errors surface as :class:`ServeClientError` carrying the pending
        line.
        """
        stripped = line.rstrip("\n")
        # Control lines mutate server state (generation bumps, drains):
        # resending one after an ambiguous failure could apply it twice.
        attempts = 1 if stripped.startswith("!") else 1 + self.retries
        last: Exception | None = None
        for attempt in range(attempts):
            try:
                self._sock.sendall((stripped + "\n").encode("utf-8"))
                response = self._reader.readline()
                if not response:
                    raise ConnectionError("server closed the connection")
                return response.rstrip("\n")
            except ServeClientError:
                raise
            except (TimeoutError, OSError) as error:
                # socket.timeout is TimeoutError; ConnectionResetError and
                # BrokenPipeError are OSError subclasses.
                last = error
                if attempt + 1 < attempts:
                    self._connect()  # raises ServeClientError if refused
        raise ServeClientError(
            f"request failed after {attempts} attempt(s): {last}",
            host=self.host, port=self.port, request_line=stripped,
        ) from last

    def close(self) -> None:
        self._close_socket()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def replay(host: str, port: int, lines, *, timeout: float = 60.0,
           retries: int = 0) -> list[str]:
    """Replay ``lines`` over one connection; returns the response lines.

    Blank lines and ``#`` comments are skipped, matching the request-file
    handling of the single-session ``repro serve`` loop.
    """
    responses: list[str] = []
    with ServeClient(host, port, timeout=timeout, retries=retries) as client:
        for line in lines:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            responses.append(client.request(stripped))
    return responses
