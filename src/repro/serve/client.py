"""Minimal blocking client for the concurrent serving tier.

One TCP connection, one request line out, one response line back -- the
client never pipelines, so response ``i`` always answers request ``i``.
Used by the replay benchmark (``benchmarks/bench_serve_concurrent.py``),
the CI ``serve-concurrent`` job, and the server tests; thread-safe only in
the one-client-per-thread sense (open one :class:`ServeClient` per thread).
"""

from __future__ import annotations

import socket


class ServeClient:
    """Line-oriented blocking client over one TCP connection."""

    def __init__(self, host: str, port: int, *, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8", newline="\n")

    def request(self, line: str) -> str:
        """Send one request line and return its response line (stripped)."""
        self._sock.sendall((line.rstrip("\n") + "\n").encode("utf-8"))
        response = self._reader.readline()
        if not response:
            raise ConnectionError("server closed the connection")
        return response.rstrip("\n")

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def replay(host: str, port: int, lines, *, timeout: float = 60.0) -> list[str]:
    """Replay ``lines`` over one connection; returns the response lines.

    Blank lines and ``#`` comments are skipped, matching the request-file
    handling of the single-session ``repro serve`` loop.
    """
    responses: list[str] = []
    with ServeClient(host, port, timeout=timeout) as client:
        for line in lines:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            responses.append(client.request(stripped))
    return responses
