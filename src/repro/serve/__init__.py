"""The query-serving subsystem: persistent sessions over a loaded index.

``repro.serve`` turns a loaded :class:`~repro.core.index.ScanIndex` into a
long-lived serving loop.  Its three pieces compose one pipeline per request:

1. :class:`~repro.serve.snapping.EpsilonSnapper` canonicalizes the query's
   float ε to the stored similarity-rank boundary it resolves to;
2. :class:`~repro.serve.cache.ResultCache` -- a bounded, generation-checked
   LRU keyed by ``(μ, snapped-ε, border-mode)`` -- answers repeats without
   touching the index;
3. on a miss, :class:`~repro.serve.session.ClusterSession` computes the
   clustering on recycled O(n)-once buffers and caches the compact result.

On top of the session sits the concurrent tier: a
:class:`~repro.serve.server.ClusterServer` front end routes newline-
delimited socket requests (:mod:`repro.serve.wire`) across N forked worker
processes (:mod:`repro.serve.worker`), each holding its own session over
the same mmapped artifact, with cache-affinity routing and supervised
restarts; :mod:`repro.serve.client` replays request streams against it.

Entry points: :meth:`ScanIndex.session() <repro.core.index.ScanIndex.
session>` in code, ``python -m repro serve ARTIFACT`` (add ``--port`` /
``--workers`` for the concurrent tier) on the command line, and
``benchmarks/bench_serving.py`` / ``benchmarks/bench_serve_concurrent.py``
for the steady-state and tail-latency numbers (``BENCH_serving.json``,
``BENCH_serve_concurrent.json``).
"""

from .cache import ResultCache
from .client import ServeClient, ServeClientError, replay
from .server import ClusterServer, DegradedServingWarning, route
from .session import ClusterSession, CompactLabels, ServedResult
from .snapping import EpsilonSnapper

__all__ = [
    "ClusterServer",
    "ClusterSession",
    "CompactLabels",
    "DegradedServingWarning",
    "EpsilonSnapper",
    "ResultCache",
    "ServeClient",
    "ServeClientError",
    "ServedResult",
    "replay",
    "route",
]
