"""The query-serving subsystem: persistent sessions over a loaded index.

``repro.serve`` turns a loaded :class:`~repro.core.index.ScanIndex` into a
long-lived serving loop.  Its three pieces compose one pipeline per request:

1. :class:`~repro.serve.snapping.EpsilonSnapper` canonicalizes the query's
   float ε to the stored similarity-rank boundary it resolves to;
2. :class:`~repro.serve.cache.ResultCache` -- a bounded, generation-checked
   LRU keyed by ``(μ, snapped-ε, border-mode)`` -- answers repeats without
   touching the index;
3. on a miss, :class:`~repro.serve.session.ClusterSession` computes the
   clustering on recycled O(n)-once buffers and caches the compact result.

Entry points: :meth:`ScanIndex.session() <repro.core.index.ScanIndex.
session>` in code, ``python -m repro serve ARTIFACT`` on the command line,
and ``benchmarks/bench_serving.py`` for the steady-state numbers
(``BENCH_serving.json``).
"""

from .cache import ResultCache
from .session import ClusterSession, CompactLabels, ServedResult
from .snapping import EpsilonSnapper

__all__ = [
    "ClusterSession",
    "CompactLabels",
    "EpsilonSnapper",
    "ResultCache",
    "ServedResult",
]
