"""Worker process of the concurrent serving tier.

Each worker holds one :class:`~repro.serve.session.ClusterSession` over its
own mmap of the *same* saved artifact -- the zero-recompute load means the
page cache backs every worker with one physical copy, so per-worker memory
is near-free.  Workers receive requests over a pipe from the front end
(:mod:`repro.serve.server`), answer them through their session (whose
ε-snapped LRU stays hot because the front end routes each ``(μ, ε-rank)``
pair to a fixed worker), and format the response line themselves so the
front end only forwards bytes.

Generation contract: every request carries the server's artifact
generation.  A worker that sees a newer generation than the one it loaded
drops its index and session and reloads from disk before answering -- the
crash-safe artifact swap of ``repro update`` guarantees the reload sees
either the complete old or the complete new artifact, and the front end
only bumps the generation after the swap is durable, so every answer at
generation ``g`` reflects the artifact as of ``g``.

Observability contract: a forked worker inherits the parent's registry and
tracer, so the first statement is ``obs.reset()`` -- otherwise every worker
would re-count the front end's metrics and interleave writes into its trace
file.  When the front end traces to ``PATH``, each worker traces to
``PATH.worker<id>``; the ``("metrics", request_id)`` message syncs the
session's counters into the worker registry and replies with a snapshot,
which the front end merges for ``!metrics``.

The request entry is a registered fault site (``serve.worker.request``), so
the deterministic fault harness can kill or wedge a specific worker
mid-traffic to drive the restart/degradation paths.
"""

from __future__ import annotations

from pathlib import Path

from .. import obs
from ..testing.faults import fault_point
from . import wire

#: Worker exit code for an unreadable artifact (distinct from fault kills).
EXIT_BAD_ARTIFACT = 3


def worker_main(
    artifact_path: str | Path,
    worker_id: int,
    connection,
    *,
    cache_size: int = 256,
    deterministic: bool = False,
    generation: int = 0,
    trace_path: str | None = None,
) -> None:
    """Request loop of one serving worker; runs until ``stop`` or EOF.

    Messages from the front end are tuples; the first element selects:

    ``("serve", request_id, generation, mu, epsilon)``
        Answer one query.  Replies ``("ok", request_id, line)`` with the
        formatted response, or ``("error", request_id, message)`` for a
        request rejected by validation.
    ``("stats", request_id)``
        Replies ``("ok", request_id, session_stats_dict)``.
    ``("metrics", request_id)``
        Replies ``("ok", request_id, registry_snapshot_dict)`` after
        syncing the session's counters into the worker's registry.
    ``("stop",)``
        Clean shutdown.
    """
    from ..core.index import ScanIndex

    # Shed the forked-in parent observability state before anything else.
    obs.reset()
    if trace_path is not None:
        obs.configure(trace_path)

    try:
        index = ScanIndex.load(artifact_path)
    except Exception as error:  # pragma: no cover - exercised via restarts
        try:
            connection.send(("dead", None, f"worker {worker_id} cannot load: {error}"))
        finally:
            raise SystemExit(EXIT_BAD_ARTIFACT)
    session = index.session(cache_size=cache_size)
    reloads = obs.counter("serve.worker.reloads_total")

    try:
        while True:
            try:
                message = connection.recv()
            except EOFError:
                return
            kind = message[0]
            if kind == "stop":
                return
            if kind == "stats":
                _, request_id = message
                stats = dict(session.stats())
                stats["generation"] = generation
                connection.send(("ok", request_id, stats))
                continue
            if kind == "metrics":
                _, request_id = message
                session.sync_metrics()
                connection.send(("ok", request_id, obs.metrics().snapshot()))
                continue
            _, request_id, request_generation, mu, epsilon = message
            # Fault site: chaos tests arm kills/crashes here to exercise the
            # front end's restart and degradation contract.
            fault_point("serve.worker.request", task=worker_id)
            if request_generation != generation:
                # The artifact was updated (or explicitly invalidated) after
                # we loaded: remap it.  Reload, do not repair -- the artifact
                # on disk is always a complete committed build.  Fault site:
                # chaos kills/wedges the reload to prove a generation flip
                # cannot strand a request.
                fault_point("serve.worker.reload", task=worker_id)
                index = ScanIndex.load(artifact_path)
                session = index.session(cache_size=cache_size)
                reloads.inc()
                obs.event(
                    "serve.worker.reload",
                    worker=worker_id,
                    generation=request_generation,
                )
                generation = request_generation
            try:
                if obs.on():
                    with obs.span(
                        "serve.worker.request", worker=worker_id, mu=mu
                    ) as request_span:
                        result = session.serve(
                            mu, epsilon, deterministic_borders=deterministic
                        )
                        request_span.attrs["cache"] = (
                            "hit" if result.from_cache else "miss"
                        )
                else:
                    result = session.serve(
                        mu, epsilon, deterministic_borders=deterministic
                    )
            except ValueError as error:
                connection.send(("error", request_id, str(error)))
                continue
            connection.send(("ok", request_id, wire.format_response(result)))
    finally:
        # Close out the worker's trace (clean stop or EOF after a parent
        # crash): sync the session counters and write the final snapshot so
        # a per-worker trace file is self-contained like the front end's.
        if obs.on():
            session.sync_metrics()
        obs.finalise()
