"""ε-snapping: canonicalizing query thresholds to stored similarity boundaries.

Every comparison a query makes against ε is of the form ``stored >= ε``,
where ``stored`` is either a neighbor-order similarity (the arc gather,
Algorithm 5 line 4) or a core-order threshold (the core prefix search,
Algorithm 3) -- and the core thresholds are themselves drawn from the
neighbor-order similarities (:func:`repro.core.core_order.build_core_order`
reads the threshold of ``v`` for μ off position μ-2 of ``NO[v]``).  The
stored values therefore form one finite set, and two thresholds ε ≤ ε' give
*every* comparison the same outcome -- hence bit-identical clusterings for
every μ -- exactly when no stored value lies in ``[ε, ε')``.

:class:`EpsilonSnapper` precomputes the sorted distinct stored values once
per session and maps any float ε to the boundary of its equivalence
interval:

* :meth:`EpsilonSnapper.rank` returns the number of distinct stored values
  strictly below ε -- the canonical integer key the serving cache uses, so
  distinct ε values with identical prefixes share one cache entry;
* :meth:`EpsilonSnapper.snap` returns the boundary value itself: the
  *smallest* stored similarity ≥ ε (ties snap **up**, i.e. ε snaps to the
  top of the half-open interval ``(prev, s]`` it lies in).  Querying with
  the snapped value in place of ε provably returns the same clustering,
  because ``stored >= ε`` and ``stored >= snap(ε)`` agree on every stored
  value.  When ε exceeds every stored value the query matches nothing and
  :meth:`snap` returns ``inf`` (all such ε share the one "empty" rank).
"""

from __future__ import annotations

import numpy as np

__all__ = ["EpsilonSnapper"]


class EpsilonSnapper:
    """Maps query thresholds to the similarity-rank boundary they resolve to.

    Parameters
    ----------
    neighbor_order:
        The index's :class:`~repro.core.neighbor_order.NeighborOrder`; its
        ``similarities`` column supplies the stored values.
    core_order:
        The index's :class:`~repro.core.core_order.CoreOrder`.  Its
        thresholds are a subset of the neighbor-order similarities by
        construction, but they are unioned in anyway so the snapper stays
        correct for hand-assembled or foreign artifacts.
    """

    def __init__(self, neighbor_order, core_order=None) -> None:
        values = np.asarray(neighbor_order.similarities, dtype=np.float64)
        if core_order is not None:
            values = np.concatenate(
                [values, np.asarray(core_order.thresholds, dtype=np.float64)]
            )
        self._boundaries = np.unique(values)  # sorted ascending, distinct
        self._boundaries.setflags(write=False)

    @classmethod
    def from_index(cls, index) -> "EpsilonSnapper":
        """Build a snapper over a :class:`~repro.core.index.ScanIndex`."""
        return cls(index.neighbor_order, index.core_order)

    @property
    def num_boundaries(self) -> int:
        """Number of distinct stored similarity values."""
        return int(self._boundaries.shape[0])

    @property
    def boundaries(self) -> np.ndarray:
        """The sorted distinct stored similarity values (read-only view)."""
        return self._boundaries

    def rank(self, epsilon: float) -> int:
        """Number of distinct stored values strictly below ``epsilon``.

        This is the canonical cache key: ``rank(a) == rank(b)`` exactly when
        thresholds ``a`` and ``b`` select the same prefix of every sorted
        similarity run, i.e. produce bit-identical clusterings for every μ.
        """
        return int(np.searchsorted(self._boundaries, float(epsilon), side="left"))

    def snap(self, epsilon: float) -> float:
        """Smallest stored similarity ≥ ``epsilon`` (``inf`` when none exists).

        ``snap(ε)`` is the canonical representative of ε's equivalence
        interval; querying with it returns the same clustering as querying
        with ε itself.
        """
        return self.snap_at(self.rank(epsilon))

    def snap_at(self, rank: int) -> float:
        """The boundary value of a rank already computed with :meth:`rank`.

        Lets callers that hold the rank (the serving loop uses it as the
        cache key) avoid a second search over the boundary array.
        """
        if rank >= self._boundaries.shape[0]:
            return float("inf")
        return float(self._boundaries[rank])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EpsilonSnapper({self.num_boundaries} boundaries)"
