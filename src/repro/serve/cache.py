"""Bounded LRU cache for served clustering results.

The serving loop's cache maps ``(generation, μ, ε-rank, border-mode)`` keys
to compact label payloads (see :class:`repro.serve.session.CompactLabels`).
Two design points matter:

* **ε-rank keys.**  The ε component of a key is the integer rank produced by
  :class:`~repro.serve.snapping.EpsilonSnapper`, not the float the user
  typed, so every ε inside one equivalence interval hits the same entry.
* **Generations.**  A cache may outlive -- or be shared across -- sessions
  and index reloads.  Every session obtains a fresh generation token from
  :meth:`ResultCache.new_generation` and bakes it into its keys, so an entry
  cached against one loaded index can never be served for another: stale
  generations simply never match, and the LRU bound evicts their entries as
  newer traffic displaces them.

The cache itself is a plain bounded LRU over an :class:`~collections.
OrderedDict`: hits refresh recency, inserts beyond ``capacity`` evict the
least recently used entry.  It stores whatever payload objects the session
hands it and never copies them; the session freezes payload arrays
(read-only numpy flags) before insertion.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

__all__ = ["ResultCache"]


class ResultCache:
    """A bounded LRU mapping query keys to compact result payloads.

    Parameters
    ----------
    capacity:
        Maximum number of entries kept; inserting beyond it evicts the least
        recently used entry.  Must be at least 1 (a session that wants no
        caching passes ``cache_size=0`` to :class:`~repro.serve.session.
        ClusterSession` instead of constructing a zero-capacity cache).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._next_generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def new_generation(self) -> int:
        """Fresh generation token for a session binding itself to this cache.

        Tokens are never reused, so entries keyed under an older token can
        never be returned to a newer session -- the staleness guarantee the
        serving layer relies on when an artifact is rebuilt or reloaded.
        """
        token = self._next_generation
        self._next_generation += 1
        return token

    def get(self, key: Hashable):
        """Payload stored under ``key`` (refreshing recency), else ``None``."""
        payload = self._entries.get(key)
        if payload is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return payload

    def put(self, key: Hashable, payload) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry when full."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = payload
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (generation tokens keep advancing)."""
        self._entries.clear()

    def stats(self) -> dict:
        """Counters snapshot: size, capacity, hits, misses, evictions."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultCache(size={len(self)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
